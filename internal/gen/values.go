package gen

import (
	"math"
	"sort"
)

// UniformValues returns n floats uniform in [0, 1).
func UniformValues(n int, seed uint64) []float64 {
	rng := NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

// NormalValues returns n standard-normal floats.
func NormalValues(n int, seed uint64) []float64 {
	rng := NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Norm()
	}
	return out
}

// LogNormalValues returns n log-normal floats (exp of a normal with
// the given mu and sigma) — a standard latency-distribution model used
// by the quantile examples.
func LogNormalValues(n int, mu, sigma float64, seed uint64) []float64 {
	rng := NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Exp(mu + sigma*rng.Norm())
	}
	return out
}

// SortedValues returns 0, 1, …, n-1 as floats: sorted input is the
// adversarial case for GK-style quantile summaries.
func SortedValues(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

// ReversedValues returns n-1, n-2, …, 0 as floats.
func ReversedValues(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(n - 1 - i)
	}
	return out
}

// SawtoothValues interleaves ascending runs, another classic quantile
// stress pattern: run r contributes values r, r+period, r+2·period, …
func SawtoothValues(n, period int) []float64 {
	if period <= 0 {
		period = 1
	}
	out := make([]float64, 0, n)
	for r := 0; r < period && len(out) < n; r++ {
		for v := r; len(out) < n; v += period {
			out = append(out, float64(v))
			if v+period >= n {
				break
			}
		}
	}
	// Pad if the nested loop undershot (can happen when period > n).
	for len(out) < n {
		out = append(out, float64(len(out)))
	}
	return out
}

// Point is a point in the plane, used by the geometric summaries.
type Point struct {
	X, Y float64
}

// UniformPoints returns n points uniform in the unit square.
func UniformPoints(n int, seed uint64) []Point {
	rng := NewRNG(seed)
	out := make([]Point, n)
	for i := range out {
		out[i] = Point{rng.Float64(), rng.Float64()}
	}
	return out
}

// GaussianPoints returns n points from an anisotropic Gaussian,
// stretched by (sx, sy) and rotated by theta — exercises directional
// width along non-axis directions.
func GaussianPoints(n int, sx, sy, theta float64, seed uint64) []Point {
	rng := NewRNG(seed)
	cos, sin := math.Cos(theta), math.Sin(theta)
	out := make([]Point, n)
	for i := range out {
		x, y := sx*rng.Norm(), sy*rng.Norm()
		out[i] = Point{x*cos - y*sin, x*sin + y*cos}
	}
	return out
}

// RingPoints returns n points on a noisy circle of the given radius —
// the worst case for convex-extent summaries because every point is
// nearly extreme in some direction.
func RingPoints(n int, radius, noise float64, seed uint64) []Point {
	rng := NewRNG(seed)
	out := make([]Point, n)
	for i := range out {
		a := 2 * math.Pi * rng.Float64()
		r := radius + noise*rng.Norm()
		out[i] = Point{r * math.Cos(a), r * math.Sin(a)}
	}
	return out
}

// ClusteredPoints returns n points in c Gaussian clusters with the
// given spread, centers uniform in the unit square — the skewed case
// for range counting.
func ClusteredPoints(n, c int, spread float64, seed uint64) []Point {
	if c <= 0 {
		c = 1
	}
	rng := NewRNG(seed)
	centers := make([]Point, c)
	for i := range centers {
		centers[i] = Point{rng.Float64(), rng.Float64()}
	}
	out := make([]Point, n)
	for i := range out {
		ct := centers[rng.Intn(c)]
		out[i] = Point{ct.X + spread*rng.Norm(), ct.Y + spread*rng.Norm()}
	}
	return out
}

// QuantileOf returns the exact phi-quantile of values (nearest-rank on
// a sorted copy); a convenience for tests and examples.
func QuantileOf(values []float64, phi float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	i := int(phi * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	if i < 0 {
		i = 0
	}
	return s[i]
}
