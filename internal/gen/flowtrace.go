package gen

import (
	"math"

	"repro/internal/core"
)

// FlowTrace synthesizes a packet-level network trace with the
// statistical shape of the CAIDA-style captures this literature
// usually evaluates on (see DESIGN.md §2 on substitutions): flow sizes
// are Pareto-distributed (heavy-tailed, "elephants and mice"), packets
// of concurrently active flows interleave, and the active flow set
// churns over time as flows finish and new ones start.
type FlowTrace struct {
	// ActiveFlows is the number of concurrently active flows.
	ActiveFlows int
	// ParetoAlpha is the flow-size tail index (1.1–1.5 is typical for
	// internet traffic; smaller = heavier elephants).
	ParetoAlpha float64
	// MinFlowSize is the minimum packets per flow.
	MinFlowSize int
	// Seed makes the trace reproducible.
	Seed uint64
}

// DefaultFlowTrace returns parameters resembling a backbone capture.
func DefaultFlowTrace(seed uint64) FlowTrace {
	return FlowTrace{ActiveFlows: 4096, ParetoAlpha: 1.2, MinFlowSize: 1, Seed: seed}
}

// flowState is one active flow.
type flowState struct {
	id        core.Item
	remaining int
}

// Generate produces n packet arrivals: each element is the flow ID of
// one packet. Flow IDs are unique across the trace (finished flows
// never reappear), sizes are Pareto(alpha) and packets interleave
// uniformly over active flows.
func (ft FlowTrace) Generate(n int) []core.Item {
	if ft.ActiveFlows < 1 {
		ft.ActiveFlows = 1
	}
	if ft.ParetoAlpha <= 0 {
		ft.ParetoAlpha = 1.2
	}
	if ft.MinFlowSize < 1 {
		ft.MinFlowSize = 1
	}
	rng := NewRNG(ft.Seed)
	nextID := core.Item(1)
	newFlow := func() flowState {
		// Pareto via inverse CDF: size = min / U^(1/alpha).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		size := int(float64(ft.MinFlowSize) / math.Pow(u, 1/ft.ParetoAlpha))
		if size < ft.MinFlowSize {
			size = ft.MinFlowSize
		}
		const maxFlow = 1 << 22 // cap the tail so one flow cannot swallow the trace
		if size > maxFlow {
			size = maxFlow
		}
		f := flowState{id: nextID, remaining: size}
		nextID++
		return f
	}
	active := make([]flowState, ft.ActiveFlows)
	for i := range active {
		active[i] = newFlow()
	}
	out := make([]core.Item, 0, n)
	// Burst model: a selected flow emits a run of packets scaled with
	// its remaining size (large flows send at higher rates), which is
	// what makes packet counts heavy-tailed like real traces — flow
	// *sizes* alone do not, because uniform interleaving would give
	// every active flow the same packet rate.
	const maxBurst = 64
	for len(out) < n {
		j := rng.Intn(len(active))
		burst := active[j].remaining / 4
		if burst < 1 {
			burst = 1
		}
		if burst > maxBurst {
			burst = maxBurst
		}
		for b := 0; b < burst && len(out) < n; b++ {
			out = append(out, active[j].id)
			active[j].remaining--
			if active[j].remaining == 0 {
				active[j] = newFlow()
				break
			}
		}
	}
	return out
}
