package randquant

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
)

func rankError(oracle *exact.Quantiles, got float64, phi float64, n int) uint64 {
	trueRank := oracle.Rank(got)
	target := uint64(phi * float64(n))
	if target > trueRank {
		return target - trueRank
	}
	return trueRank - target
}

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"s=0":      func() { New(0, 1) },
		"eps=0":    func() { NewEpsilon(0, 1) },
		"eps=1":    func() { NewEpsilon(1, 1) },
		"nan":      func() { New(4, 1).Update(math.NaN()) },
		"hybrid s": func() { NewHybrid(0, 3, 1) },
		"hybrid l": func() { NewHybrid(4, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestEmpty(t *testing.T) {
	s := New(8, 1)
	if s.N() != 0 || s.Size() != 0 || s.Levels() != 0 {
		t.Fatal("empty summary not empty")
	}
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("Quantile on empty should be NaN")
	}
	if s.Rank(3) != 0 {
		t.Error("Rank on empty should be 0")
	}
}

func TestExactWhenSmall(t *testing.T) {
	s := New(100, 1)
	vals := []float64{5, 1, 9, 3, 7}
	for _, v := range vals {
		s.Update(v)
	}
	// Everything fits the partial buffer: exact answers.
	if r := s.Rank(4); r != 2 {
		t.Errorf("Rank(4) = %d, want 2", r)
	}
	if q := s.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %v, want 1", q)
	}
	if q := s.Quantile(1); q != 9 {
		t.Errorf("Quantile(1) = %v, want 9", q)
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Weight conservation: the hierarchy represents every insert exactly
// once at every moment.
func TestWeightConservation(t *testing.T) {
	s := New(7, 3)
	for i, v := range gen.UniformValues(10000, 5) {
		s.Update(v)
		if i%997 == 0 {
			if err := s.checkInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.StoredWeight() != s.N() {
		t.Fatalf("weight %d != n %d", s.StoredWeight(), s.N())
	}
}

// The hierarchy must stay logarithmic: size ~ s * log2(n/s).
func TestSizeLogarithmic(t *testing.T) {
	s := New(64, 9)
	const n = 1 << 17
	for _, v := range gen.UniformValues(n, 2) {
		s.Update(v)
	}
	maxSize := 64 * (int(math.Log2(float64(n)/64)) + 2)
	if s.Size() > maxSize {
		t.Errorf("size %d exceeds s*log bound %d", s.Size(), maxSize)
	}
	if s.Levels() > int(math.Log2(n))+1 {
		t.Errorf("levels %d too many", s.Levels())
	}
}

// Single-stream accuracy at the NewEpsilon sizing.
func TestStreamGuarantee(t *testing.T) {
	const n = 100000
	for _, eps := range []float64{0.05, 0.01} {
		for name, vals := range map[string][]float64{
			"uniform": gen.UniformValues(n, 1),
			"normal":  gen.NormalValues(n, 2),
			"sorted":  gen.SortedValues(n),
		} {
			s := NewEpsilon(eps, 42)
			for _, v := range vals {
				s.Update(v)
			}
			oracle := exact.QuantilesOf(vals)
			slack := uint64(eps*float64(n)) + 2
			for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
				if e := rankError(oracle, s.Quantile(phi), phi, n); e > slack {
					t.Errorf("eps=%v %s phi=%v: rank error %d > %d", eps, name, phi, e, slack)
				}
			}
			if err := s.checkInvariants(); err != nil {
				t.Fatalf("eps=%v %s: %v", eps, name, err)
			}
		}
	}
}

func TestRankEstimate(t *testing.T) {
	const n = 50000
	eps := 0.02
	vals := gen.UniformValues(n, 77)
	s := NewEpsilon(eps, 7)
	for _, v := range vals {
		s.Update(v)
	}
	oracle := exact.QuantilesOf(vals)
	slack := uint64(eps*float64(n)) + 2
	for _, v := range []float64{0.1, 0.33, 0.5, 0.9} {
		got, want := s.Rank(v), oracle.Rank(v)
		diff := got - want
		if want > got {
			diff = want - got
		}
		if diff > slack {
			t.Errorf("Rank(%v) = %d, true %d (slack %d)", v, got, want, slack)
		}
	}
}

// The headline theorem: full mergeability. Any partitioning, any merge
// topology — error stays ~eps*n and size stays logarithmic.
func TestMergeTreeGuarantee(t *testing.T) {
	const n = 120000
	eps := 0.02
	vals := gen.NormalValues(n, 31)
	oracle := exact.QuantilesOf(vals)

	partitionings := map[string][][]float64{
		"contiguous": gen.PartitionContiguous(vals, 16),
		"random":     gen.PartitionRandomSizes(vals, 16, 3),
		"roundrobin": gen.PartitionRoundRobin(vals, 16),
	}
	for pname, parts := range partitionings {
		sums := make([]*Summary, len(parts))
		for i, p := range parts {
			sums[i] = NewEpsilon(eps, uint64(i)*13+1)
			for _, v := range p {
				sums[i].Update(v)
			}
		}
		// Balanced binary tree.
		for len(sums) > 1 {
			var next []*Summary
			for i := 0; i+1 < len(sums); i += 2 {
				if err := sums[i].Merge(sums[i+1]); err != nil {
					t.Fatal(err)
				}
				next = append(next, sums[i])
			}
			if len(sums)%2 == 1 {
				next = append(next, sums[len(sums)-1])
			}
			sums = next
		}
		m := sums[0]
		if m.N() != n {
			t.Fatalf("%s: N=%d, want %d", pname, m.N(), n)
		}
		if err := m.checkInvariants(); err != nil {
			t.Fatalf("%s: %v", pname, err)
		}
		slack := uint64(eps*float64(n)) + 2
		for _, phi := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
			if e := rankError(oracle, m.Quantile(phi), phi, n); e > slack {
				t.Errorf("%s phi=%v: rank error %d > %d", pname, phi, e, slack)
			}
		}
	}
}

// Sequential one-way merging (site i folded into the accumulator one
// at a time) must be as good as the balanced tree.
func TestSequentialMergeGuarantee(t *testing.T) {
	const n = 80000
	eps := 0.02
	vals := gen.UniformValues(n, 17)
	oracle := exact.QuantilesOf(vals)
	acc := NewEpsilon(eps, 1)
	for i, p := range gen.PartitionContiguous(vals, 40) {
		s := NewEpsilon(eps, uint64(i)+100)
		for _, v := range p {
			s.Update(v)
		}
		if err := acc.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	if acc.N() != n {
		t.Fatalf("N=%d", acc.N())
	}
	slack := uint64(eps*float64(n)) + 2
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		if e := rankError(oracle, acc.Quantile(phi), phi, n); e > slack {
			t.Errorf("phi=%v: rank error %d > %d", phi, e, slack)
		}
	}
}

func TestMergeMismatched(t *testing.T) {
	a, b := New(8, 1), New(16, 1)
	if err := a.Merge(b); err == nil {
		t.Error("mismatched block size accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestMergeDoesNotModifyOther(t *testing.T) {
	a, b := New(8, 1), New(8, 2)
	for _, v := range gen.UniformValues(100, 3) {
		a.Update(v)
	}
	for _, v := range gen.UniformValues(123, 4) {
		b.Update(v)
	}
	bn, bsize := b.N(), b.Size()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if b.N() != bn || b.Size() != bsize {
		t.Fatal("merge modified other")
	}
	if a.N() != 223 {
		t.Fatalf("a.N = %d", a.N())
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(8, 1)
	for _, v := range gen.UniformValues(100, 3) {
		a.Update(v)
	}
	c := a.Clone()
	c.Update(1)
	if c.N() != a.N()+1 {
		t.Fatal("clone not independent")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	a := New(8, 1)
	for _, v := range gen.UniformValues(100, 3) {
		a.Update(v)
	}
	a.Reset()
	if a.N() != 0 || a.Size() != 0 {
		t.Fatal("Reset incomplete")
	}
	a.Update(5)
	if a.Rank(5) != 1 {
		t.Fatal("unusable after Reset")
	}
}

func TestDeterminismBySeed(t *testing.T) {
	build := func(seed uint64) *Summary {
		s := New(16, seed)
		for _, v := range gen.UniformValues(5000, 9) {
			s.Update(v)
		}
		return s
	}
	a, b := build(7), build(7)
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		if a.Quantile(phi) != b.Quantile(phi) {
			t.Fatal("same seed produced different summaries")
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	s := NewEpsilon(0.05, 3)
	for _, v := range gen.NormalValues(20000, 8) {
		s.Update(v)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.N() != s.N() || got.Size() != s.Size() || got.BlockSize() != s.BlockSize() {
		t.Fatal("round-trip changed state")
	}
	for _, phi := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got.Quantile(phi) != s.Quantile(phi) {
			t.Errorf("phi=%v differs after round trip", phi)
		}
	}
	if err := got.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	s := New(4, 1)
	for _, v := range gen.UniformValues(100, 2) {
		s.Update(v)
	}
	data, _ := s.MarshalBinary()
	data[len(data)-5] ^= 0xff
	var got Summary
	if err := got.UnmarshalBinary(data); err == nil {
		t.Fatal("corrupted frame accepted")
	}
}

func TestCodecKindMismatch(t *testing.T) {
	h := NewHybrid(8, 3, 1)
	for _, v := range gen.UniformValues(100, 2) {
		h.Update(v)
	}
	data, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := s.UnmarshalBinary(data); err == nil {
		t.Fatal("plain summary decoded a hybrid frame")
	}
	sdata, err := New(8, 1).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var h2 Hybrid
	if err := h2.UnmarshalBinary(sdata); err == nil {
		t.Fatal("hybrid decoded a plain frame")
	}
}
