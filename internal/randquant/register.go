package randquant

import (
	"repro/internal/codec"
	"repro/internal/gen"
	"repro/internal/registry"
)

// init catalogs the family; see internal/registry. Only Summary is
// registered: Hybrid shares the randquant wire tag (a bool payload
// discriminant), so it rides the same frame kind and is decoded
// explicitly by callers that build hybrids.
func init() {
	registry.Register[Summary](codec.KindRandQuant, "quantile", registry.Spec[Summary]{
		Example: func(n int) *Summary {
			s := NewEpsilon(0.02, 4)
			for _, v := range gen.UniformValues(n, 4) {
				s.Update(v)
			}
			return s
		},
		Merge: (*Summary).Merge,
		N:     (*Summary).N,
	})
}
