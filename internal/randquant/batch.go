package randquant

import "math"

// UpdateBatch inserts every value in vs. The resulting state is
// identical to calling Update(v) for each v in order: the partial
// buffer fills in bulk copies and level-0 promotions trigger at
// exactly the same points, consuming the same RNG draws. NaN values
// panic, as in Update.
//
//sketch:hotpath
func (s *Summary) UpdateBatch(vs []float64) {
	for _, v := range vs {
		if math.IsNaN(v) {
			panic("randquant: NaN has no rank")
		}
	}
	for len(vs) > 0 {
		room := s.s - len(s.partial)
		if room <= 0 {
			s.promotePartial()
			continue
		}
		if room > len(vs) {
			room = len(vs)
		}
		s.partial = append(s.partial, vs[:room]...)
		s.n += uint64(room)
		vs = vs[room:]
		if len(s.partial) >= s.s {
			s.promotePartial()
		}
	}
}

// UpdateBatch inserts every value in vs, identically to calling
// Update(v) for each v in order (the same acceptance draws are
// consumed in the same order).
//
//sketch:hotpath
func (h *Hybrid) UpdateBatch(vs []float64) {
	for _, v := range vs {
		if math.IsNaN(v) {
			panic("randquant: NaN has no rank")
		}
		h.n++
		if h.ell > 0 {
			if h.rng.Uint64()&((1<<uint(h.ell))-1) != 0 {
				continue
			}
		}
		h.push(v)
	}
}
