package randquant

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
)

func TestHybridExactWhenSmall(t *testing.T) {
	h := NewHybrid(100, 3, 1)
	vals := []float64{5, 1, 9, 3, 7}
	for _, v := range vals {
		h.Update(v)
	}
	if h.SampleLevel() != 0 {
		t.Fatal("sampling active on tiny input")
	}
	if r := h.Rank(4); r != 2 {
		t.Errorf("Rank(4) = %d, want 2", r)
	}
	if q := h.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %v", q)
	}
}

// The hybrid's reason to exist: size stays bounded by ~s*(l+1) no
// matter how large n grows, unlike the plain summary whose level count
// grows with log(n).
func TestHybridSizeIndependentOfN(t *testing.T) {
	const s, l = 32, 4
	h := NewHybrid(s, l, 5)
	cap := s * (l + 2)
	for i, v := range gen.UniformValues(1<<18, 3) {
		h.Update(v)
		if i%50000 == 0 {
			if h.Size() > cap {
				t.Fatalf("at n=%d: size %d exceeds cap %d", i+1, h.Size(), cap)
			}
		}
	}
	if h.Size() > cap {
		t.Fatalf("final size %d exceeds cap %d", h.Size(), cap)
	}
	if h.SampleLevel() == 0 {
		t.Fatal("sampling never activated on a large stream")
	}
	if err := h.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHybridStreamGuarantee(t *testing.T) {
	const n = 200000
	eps := 0.05
	for name, vals := range map[string][]float64{
		"uniform": gen.UniformValues(n, 1),
		"normal":  gen.NormalValues(n, 2),
	} {
		h := NewHybridEpsilon(eps, 42)
		for _, v := range vals {
			h.Update(v)
		}
		oracle := exact.QuantilesOf(vals)
		slack := uint64(eps*float64(n)) + 2
		for _, phi := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
			if e := rankError(oracle, h.Quantile(phi), phi, n); e > slack {
				t.Errorf("%s phi=%v: rank error %d > %d", name, phi, e, slack)
			}
		}
		if err := h.checkInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// StoredWeight must track N closely once sampling is active (it is an
// unbiased estimator).
func TestHybridWeightEstimate(t *testing.T) {
	const n = 1 << 17
	h := NewHybrid(64, 4, 9)
	for _, v := range gen.UniformValues(n, 4) {
		h.Update(v)
	}
	w := float64(h.StoredWeight())
	if math.Abs(w-n)/n > 0.10 {
		t.Errorf("stored weight %v deviates more than 10%% from n=%d", w, n)
	}
}

func TestHybridMergeGuarantee(t *testing.T) {
	const n = 160000
	eps := 0.05
	vals := gen.NormalValues(n, 77)
	oracle := exact.QuantilesOf(vals)
	parts := gen.PartitionRandomSizes(vals, 16, 2)
	hs := make([]*Hybrid, len(parts))
	for i, p := range parts {
		hs[i] = NewHybridEpsilon(eps, uint64(i)*7+1)
		for _, v := range p {
			hs[i].Update(v)
		}
	}
	for len(hs) > 1 {
		var next []*Hybrid
		for i := 0; i+1 < len(hs); i += 2 {
			if err := hs[i].Merge(hs[i+1]); err != nil {
				t.Fatal(err)
			}
			next = append(next, hs[i])
		}
		if len(hs)%2 == 1 {
			next = append(next, hs[len(hs)-1])
		}
		hs = next
	}
	m := hs[0]
	if m.N() != n {
		t.Fatalf("N = %d, want %d", m.N(), n)
	}
	if err := m.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	slack := uint64(eps*float64(n)) + 2
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		if e := rankError(oracle, m.Quantile(phi), phi, n); e > slack {
			t.Errorf("phi=%v: rank error %d > %d", phi, e, slack)
		}
	}
}

// Merging hybrids at different sampling levels must align them without
// touching the argument.
func TestHybridMergeDifferentLevels(t *testing.T) {
	big := NewHybrid(32, 3, 1)
	for _, v := range gen.UniformValues(1<<16, 2) {
		big.Update(v)
	}
	small := NewHybrid(32, 3, 2)
	for _, v := range gen.UniformValues(500, 3) {
		small.Update(v)
	}
	if big.SampleLevel() == small.SampleLevel() {
		t.Fatal("test needs distinct sample levels")
	}
	sn, ssize, slevel := small.N(), small.Size(), small.SampleLevel()
	if err := big.Merge(small); err != nil {
		t.Fatal(err)
	}
	if small.N() != sn || small.Size() != ssize || small.SampleLevel() != slevel {
		t.Fatal("merge modified the argument")
	}
	if err := big.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// And the mirror case: small (low ell) absorbing big (high ell).
	small2 := NewHybrid(32, 3, 4)
	for _, v := range gen.UniformValues(500, 5) {
		small2.Update(v)
	}
	big2 := NewHybrid(32, 3, 6)
	for _, v := range gen.UniformValues(1<<16, 7) {
		big2.Update(v)
	}
	if err := small2.Merge(big2); err != nil {
		t.Fatal(err)
	}
	if small2.N() != 500+1<<16 {
		t.Fatalf("N = %d", small2.N())
	}
	if err := small2.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHybridMergeMismatched(t *testing.T) {
	a := NewHybrid(8, 3, 1)
	if err := a.Merge(NewHybrid(16, 3, 1)); err == nil {
		t.Error("mismatched s accepted")
	}
	if err := a.Merge(NewHybrid(8, 4, 1)); err == nil {
		t.Error("mismatched l accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestHybridCodecRoundTrip(t *testing.T) {
	h := NewHybrid(32, 4, 11)
	for _, v := range gen.NormalValues(1<<15, 6) {
		h.Update(v)
	}
	data, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Hybrid
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.N() != h.N() || got.Size() != h.Size() || got.SampleLevel() != h.SampleLevel() {
		t.Fatal("round-trip changed state")
	}
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		if got.Quantile(phi) != h.Quantile(phi) {
			t.Errorf("phi=%v differs after round trip", phi)
		}
	}
	if err := got.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHybridEmptyQuantile(t *testing.T) {
	h := NewHybrid(8, 3, 1)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("Quantile on empty hybrid should be NaN")
	}
}
