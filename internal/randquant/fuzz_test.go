package randquant

import (
	"testing"

	"repro/internal/gen"
)

func FuzzUnmarshal(f *testing.F) {
	s := New(8, 1)
	for _, v := range gen.UniformValues(500, 1) {
		s.Update(v)
	}
	plain, _ := s.MarshalBinary()
	h := NewHybrid(8, 3, 1)
	for _, v := range gen.UniformValues(5000, 2) {
		h.Update(v)
	}
	hybrid, _ := h.MarshalBinary()
	f.Add(plain)
	f.Add(hybrid)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out Summary
		if err := out.UnmarshalBinary(data); err == nil {
			if err := out.checkInvariants(); err != nil {
				t.Fatalf("accepted plain frame violates invariants: %v", err)
			}
		}
		var oh Hybrid
		if err := oh.UnmarshalBinary(data); err == nil {
			if err := oh.checkInvariants(); err != nil {
				t.Fatalf("accepted hybrid frame violates invariants: %v", err)
			}
		}
	})
}
