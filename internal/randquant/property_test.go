package randquant

import (
	"testing"
	"testing/quick"
)

// Property: weight conservation — the hierarchy represents every
// insert exactly once through any interleaving of updates and merges.
func TestPropertyWeightConservation(t *testing.T) {
	f := func(vals []float64, sRaw uint8, splits []bool) bool {
		s := int(sRaw%16) + 1
		for i, v := range vals {
			if v != v { // NaN
				vals[i] = 0
			}
		}
		// Scatter values over three summaries, merge them pairwise.
		sums := []*Summary{New(s, 1), New(s, 2), New(s, 3)}
		for i, v := range vals {
			sums[i%3].Update(v)
		}
		order := []int{0, 1, 2}
		if len(splits) > 0 && splits[0] {
			order = []int{2, 0, 1}
		}
		acc := sums[order[0]]
		if err := acc.Merge(sums[order[1]]); err != nil {
			return false
		}
		if err := acc.Merge(sums[order[2]]); err != nil {
			return false
		}
		if acc.N() != uint64(len(vals)) {
			return false
		}
		return acc.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Rank is monotone in v and bounded by the stored weight.
func TestPropertyRankMonotone(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		if a != a || b != b {
			return true
		}
		s := New(8, 5)
		for _, v := range vals {
			if v == v {
				s.Update(v)
			}
		}
		if a > b {
			a, b = b, a
		}
		ra, rb := s.Rank(a), s.Rank(b)
		return ra <= rb && rb <= s.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: codec round-trips preserve every query answer.
func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(vals []float64, sRaw uint8) bool {
		s := int(sRaw%16) + 1
		sum := New(s, 9)
		for _, v := range vals {
			if v == v {
				sum.Update(v)
			}
		}
		data, err := sum.MarshalBinary()
		if err != nil {
			return false
		}
		var got Summary
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		if got.N() != sum.N() || got.Size() != sum.Size() {
			return false
		}
		for _, phi := range []float64{0, 0.5, 1} {
			a, b := got.Quantile(phi), sum.Quantile(phi)
			if a != b && !(a != a && b != b) { // NaN == NaN for empty
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
