package randquant

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/gen"
)

// Hybrid is the size-independent-of-n variant of the mergeable
// quantile summary (PODS'12 §3.3–3.4): the logarithmic block hierarchy
// is kept only for the top L levels, and the infinite tail of low
// levels is replaced by random sampling — values enter the summary
// with probability 2^-ell at weight 2^ell, and ell grows as n grows so
// that at most L block levels are ever active. Total size is O(s·L) =
// O((1/ε)·log^{1.5}(1/ε)) samples, independent of n.
//
// Substitution note (see DESIGN.md §2): the paper implements the
// sampler with bottom-k random tags so that the sample is an exact
// function of the tag assignment; this implementation uses seeded
// Bernoulli subsampling, which preserves unbiasedness, the error
// shape, and mergeability, at the cost of the sample not being
// exchangeable across re-orderings of the same merge tree.
//
//sketch:unregistered — Hybrid shares the randquant wire tag with
// Summary (a bool payload discriminant selects the variant), so it
// cannot hold its own registry entry; decode it explicitly.
type Hybrid struct {
	s   int    // samples per block
	l   int    // max active block levels above ell
	n   uint64 // exact number of inserted values (incl. merges)
	ell int    // sampling exponent: new values accepted w.p. 2^-ell

	partial []float64   // accepted values at weight 2^ell, unsorted
	blocks  [][]float64 // blocks[i]: nil or sorted block of s samples at weight 2^i (i >= ell)
	rng     *gen.RNG
}

// NewHybrid returns an empty hybrid summary with block size s, at most
// l active block levels, and a deterministic seed.
func NewHybrid(s, l int, seed uint64) *Hybrid {
	if s < 1 {
		panic("randquant: block size must be >= 1")
	}
	if l < 1 {
		panic("randquant: level budget must be >= 1")
	}
	return &Hybrid{s: s, l: l, rng: gen.NewRNG(seed)}
}

// NewHybridEpsilon sizes the hybrid for rank error ~eps*n w.h.p.:
// the same block size as NewEpsilon and a level budget of
// max(3, ceil(log2(1/eps))+1).
func NewHybridEpsilon(eps float64, seed uint64) *Hybrid {
	if eps <= 0 || eps >= 1 {
		panic("randquant: eps must be in (0, 1)")
	}
	s := int(math.Ceil(2 / eps * math.Sqrt(math.Log2(1/eps)+1)))
	l := int(math.Ceil(math.Log2(1/eps))) + 1
	if l < 3 {
		l = 3
	}
	return NewHybrid(s, l, seed)
}

// N returns the exact number of values summarized, including merges.
func (h *Hybrid) N() uint64 { return h.n }

// BlockSize returns the number of samples per block.
func (h *Hybrid) BlockSize() int { return h.s }

// SampleLevel returns the current sampling exponent ell.
func (h *Hybrid) SampleLevel() int { return h.ell }

// Size returns the total number of stored samples.
func (h *Hybrid) Size() int {
	total := len(h.partial)
	for _, b := range h.blocks {
		total += len(b)
	}
	return total
}

// Update inserts one value (accepted into the summary with probability
// 2^-ell).
func (h *Hybrid) Update(v float64) {
	if math.IsNaN(v) {
		panic("randquant: NaN has no rank")
	}
	h.n++
	if h.ell > 0 {
		// Accept with probability 2^-ell.
		if h.rng.Uint64()&((1<<uint(h.ell))-1) != 0 {
			return
		}
	}
	h.push(v)
}

// push adds an accepted sample at weight 2^ell.
func (h *Hybrid) push(v float64) {
	h.partial = append(h.partial, v)
	if len(h.partial) >= h.s {
		h.promotePartial()
	}
}

func (h *Hybrid) promotePartial() {
	b := make([]float64, len(h.partial))
	copy(b, h.partial)
	sort.Float64s(b)
	h.partial = h.partial[:0]
	h.carry(b, h.ell)
	h.maybeAdvance()
}

// carry is the binary-counter cascade, identical to Summary.carry.
func (h *Hybrid) carry(b []float64, i int) {
	for {
		for len(h.blocks) <= i {
			h.blocks = append(h.blocks, nil)
		}
		if h.blocks[i] == nil {
			h.blocks[i] = b
			return
		}
		b = h.equalMerge(h.blocks[i], b)
		h.blocks[i] = nil
		i++
	}
}

func (h *Hybrid) equalMerge(a, b []float64) []float64 {
	union := make([]float64, 0, len(a)+len(b))
	ai, bi := 0, 0
	for ai < len(a) || bi < len(b) {
		if bi >= len(b) || (ai < len(a) && a[ai] <= b[bi]) {
			union = append(union, a[ai])
			ai++
		} else {
			union = append(union, b[bi])
			bi++
		}
	}
	offset := 0
	if h.rng.Bool() {
		offset = 1
	}
	out := make([]float64, 0, (len(union)+1)/2)
	for i := offset; i < len(union); i += 2 {
		out = append(out, union[i])
	}
	return out
}

// topLevel returns the highest occupied block level, or -1.
func (h *Hybrid) topLevel() int {
	top := -1
	for i, b := range h.blocks {
		if b != nil {
			top = i
		}
	}
	return top
}

// maybeAdvance raises ell while more than l block levels are active,
// subsampling the displaced low-level content.
func (h *Hybrid) maybeAdvance() {
	for h.topLevel()-h.ell >= h.l {
		h.advance()
	}
}

// advance increments the sampling exponent: the partial buffer and any
// block at the old ell are Bernoulli(1/2)-subsampled up to the new
// weight 2^(ell+1). Survivors are promoted in full chunks directly
// (without re-entering maybeAdvance) so the subsampling probability is
// applied exactly once per sample.
func (h *Hybrid) advance() {
	pending := append([]float64(nil), h.partial...)
	if h.ell < len(h.blocks) && h.blocks[h.ell] != nil {
		pending = append(pending, h.blocks[h.ell]...)
		h.blocks[h.ell] = nil
	}
	h.ell++
	h.partial = h.partial[:0]
	for _, v := range pending {
		if h.rng.Bool() {
			h.partial = append(h.partial, v)
		}
	}
	for len(h.partial) >= h.s {
		b := make([]float64, h.s)
		copy(b, h.partial[:h.s])
		h.partial = append(h.partial[:0], h.partial[h.s:]...)
		sort.Float64s(b)
		h.carry(b, h.ell)
	}
}

// Merge folds other into h. The summary with the smaller sampling
// exponent is advanced (subsampled) to match the larger before the
// block hierarchies are combined; other is never modified (a clone is
// advanced when needed). Summaries must share block size and level
// budget.
func (h *Hybrid) Merge(other *Hybrid) error {
	if other == nil {
		return core.ErrNilSummary
	}
	if h.s != other.s || h.l != other.l {
		return fmt.Errorf("%w: hybrid shape (s=%d,l=%d) vs (s=%d,l=%d)",
			core.ErrMismatchedShape, h.s, h.l, other.s, other.l)
	}
	for h.ell < other.ell {
		h.advance()
	}
	if other.ell < h.ell {
		other = other.Clone()
		for other.ell < h.ell {
			other.advance()
		}
	}
	h.n += other.n
	for i := len(other.blocks) - 1; i >= 0; i-- {
		if other.blocks[i] != nil {
			b := make([]float64, len(other.blocks[i]))
			copy(b, other.blocks[i])
			h.carry(b, i)
		}
	}
	for _, v := range other.partial {
		h.push(v)
	}
	h.maybeAdvance()
	return nil
}

// MergedHybrid returns the merge of a and b without modifying either.
func MergedHybrid(a, b *Hybrid) (*Hybrid, error) {
	out := a.Clone()
	if err := out.Merge(b); err != nil {
		return nil, err
	}
	return out, nil
}

// StoredWeight returns the total weight of stored samples — an
// unbiased estimate of N once sampling is active.
func (h *Hybrid) StoredWeight() uint64 {
	var w uint64
	for i, b := range h.blocks {
		w += uint64(len(b)) << uint(i)
	}
	return w + uint64(len(h.partial))<<uint(h.ell)
}

// Rank estimates the number of inserted values <= v.
func (h *Hybrid) Rank(v float64) uint64 {
	var r uint64
	for i, b := range h.blocks {
		if b == nil {
			continue
		}
		c := sort.Search(len(b), func(j int) bool { return b[j] > v })
		r += uint64(c) << uint(i)
	}
	for _, x := range h.partial {
		if x <= v {
			r += 1 << uint(h.ell)
		}
	}
	return r
}

// Quantile returns a value whose rank is approximately phi*N.
func (h *Hybrid) Quantile(phi float64) float64 {
	type ws struct {
		v float64
		w uint64
	}
	all := make([]ws, 0, h.Size())
	for i, b := range h.blocks {
		for _, v := range b {
			all = append(all, ws{v: v, w: 1 << uint(i)})
		}
	}
	for _, v := range h.partial {
		all = append(all, ws{v: v, w: 1 << uint(h.ell)})
	}
	if len(all) == 0 {
		return math.NaN()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	if phi <= 0 {
		return all[0].v
	}
	if phi >= 1 {
		return all[len(all)-1].v
	}
	target := phi * float64(h.StoredWeight())
	var cum float64
	for _, x := range all {
		cum += float64(x.w)
		if cum >= target {
			return x.v
		}
	}
	return all[len(all)-1].v
}

// Clone returns a deep copy (with a re-derived RNG, as Summary.Clone).
func (h *Hybrid) Clone() *Hybrid {
	c := NewHybrid(h.s, h.l, h.rng.Uint64())
	c.n = h.n
	c.ell = h.ell
	c.partial = append([]float64(nil), h.partial...)
	c.blocks = make([][]float64, len(h.blocks))
	for i, b := range h.blocks {
		if b != nil {
			c.blocks[i] = append([]float64(nil), b...)
		}
	}
	return c
}

// checkInvariants verifies structural invariants; used by tests.
func (h *Hybrid) checkInvariants() error {
	if len(h.partial) >= h.s {
		return fmt.Errorf("partial buffer size %d >= s=%d", len(h.partial), h.s)
	}
	for i, b := range h.blocks {
		if b == nil {
			continue
		}
		if i < h.ell {
			return fmt.Errorf("block at level %d below ell=%d", i, h.ell)
		}
		if len(b) != h.s {
			return fmt.Errorf("block %d has %d samples, want %d", i, len(b), h.s)
		}
		if !sort.Float64sAreSorted(b) {
			return fmt.Errorf("block %d not sorted", i)
		}
	}
	if top := h.topLevel(); top >= 0 && top-h.ell >= h.l+1 {
		return fmt.Errorf("active levels %d exceed budget %d", top-h.ell+1, h.l)
	}
	return nil
}

var _ core.QuantileSummary = (*Hybrid)(nil)
