package randquant

import (
	"fmt"
	"sort"

	"repro/internal/codec"
)

// MarshalBinary encodes the summary. It implements
// encoding.BinaryMarshaler. The RNG state is part of the encoding so a
// decoded summary continues the same deterministic random sequence.
func (s *Summary) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	// Flag + header uvarints, 8 bytes per stored sample, one length
	// uvarint per block.
	w.Grow(1 + 4*10 + len(s.partial)*8 + len(s.blocks)*(10+s.s*8))
	w.Bool(false) // not hybrid
	w.Int(s.s)
	w.Uint64(s.n)
	w.Uint64(s.rng.State()) // decoded copy resumes the same stream
	w.Int(len(s.partial))
	for _, v := range s.partial {
		w.Float64(v)
	}
	w.Int(len(s.blocks))
	for _, b := range s.blocks {
		w.Int(len(b))
		for _, v := range b {
			w.Float64(v)
		}
	}
	return codec.EncodeFrame(codec.KindRandQuant, w.Bytes()), nil
}

// UnmarshalBinary decodes a summary previously encoded with
// MarshalBinary. It implements encoding.BinaryUnmarshaler.
func (s *Summary) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindRandQuant, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	if r.Bool() {
		return fmt.Errorf("randquant: frame holds a hybrid summary")
	}
	size := r.Int()
	n := r.Uint64()
	seed := r.Uint64()
	if r.Err() != nil {
		return r.Err()
	}
	if size < 1 {
		return fmt.Errorf("randquant: invalid block size %d in frame", size)
	}
	out := New(size, seed)
	out.n = n
	np := r.ArrayLen(8)
	if r.Err() != nil {
		return r.Err()
	}
	if np >= size {
		return fmt.Errorf("randquant: partial buffer %d exceeds block size %d", np, size)
	}
	for i := 0; i < np; i++ {
		out.partial = append(out.partial, r.Float64())
	}
	nb := r.ArrayLen(1)
	if r.Err() != nil {
		return r.Err()
	}
	out.blocks = make([][]float64, nb)
	for i := 0; i < nb; i++ {
		bl := r.ArrayLen(8)
		if r.Err() != nil {
			return r.Err()
		}
		if bl == 0 {
			continue
		}
		if bl != size {
			return fmt.Errorf("randquant: block %d has %d samples, want %d", i, bl, size)
		}
		b := make([]float64, bl)
		for j := range b {
			b[j] = r.Float64()
		}
		if !sort.Float64sAreSorted(b) {
			return fmt.Errorf("randquant: block %d not sorted", i)
		}
		out.blocks[i] = b
	}
	if err := r.Finish(); err != nil {
		return err
	}
	if out.StoredWeight() != out.n {
		return fmt.Errorf("randquant: stored weight %d != n %d", out.StoredWeight(), out.n)
	}
	*s = *out
	return nil
}

// MarshalBinary encodes the hybrid summary. It implements
// encoding.BinaryMarshaler.
func (h *Hybrid) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	w.Grow(1 + 6*10 + len(h.partial)*8 + len(h.blocks)*(10+h.s*8))
	w.Bool(true) // hybrid
	w.Int(h.s)
	w.Int(h.l)
	w.Int(h.ell)
	w.Uint64(h.n)
	w.Uint64(h.rng.State())
	w.Int(len(h.partial))
	for _, v := range h.partial {
		w.Float64(v)
	}
	w.Int(len(h.blocks))
	for _, b := range h.blocks {
		w.Int(len(b))
		for _, v := range b {
			w.Float64(v)
		}
	}
	return codec.EncodeFrame(codec.KindRandQuant, w.Bytes()), nil
}

// UnmarshalBinary decodes a hybrid summary. It implements
// encoding.BinaryUnmarshaler.
func (h *Hybrid) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindRandQuant, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	if !r.Bool() {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("randquant: frame holds a plain summary, not a hybrid")
	}
	size := r.Int()
	l := r.Int()
	ell := r.Int()
	n := r.Uint64()
	seed := r.Uint64()
	if r.Err() != nil {
		return r.Err()
	}
	if size < 1 || l < 1 || ell < 0 {
		return fmt.Errorf("randquant: invalid hybrid header (s=%d,l=%d,ell=%d)", size, l, ell)
	}
	out := NewHybrid(size, l, seed)
	out.ell = ell
	out.n = n
	np := r.ArrayLen(8)
	if r.Err() != nil {
		return r.Err()
	}
	if np >= size {
		return fmt.Errorf("randquant: partial buffer %d exceeds block size %d", np, size)
	}
	for i := 0; i < np; i++ {
		out.partial = append(out.partial, r.Float64())
	}
	nb := r.ArrayLen(1)
	if r.Err() != nil {
		return r.Err()
	}
	out.blocks = make([][]float64, nb)
	for i := 0; i < nb; i++ {
		bl := r.ArrayLen(8)
		if r.Err() != nil {
			return r.Err()
		}
		if bl == 0 {
			continue
		}
		if bl != size {
			return fmt.Errorf("randquant: block %d has %d samples, want %d", i, bl, size)
		}
		b := make([]float64, bl)
		for j := range b {
			b[j] = r.Float64()
		}
		if !sort.Float64sAreSorted(b) {
			return fmt.Errorf("randquant: block %d not sorted", i)
		}
		out.blocks[i] = b
	}
	if err := r.Finish(); err != nil {
		return err
	}
	if err := out.checkInvariants(); err != nil {
		return fmt.Errorf("randquant: decoded hybrid invalid: %w", err)
	}
	*h = *out
	return nil
}
