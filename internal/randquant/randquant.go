// Package randquant implements the randomized fully-mergeable quantile
// summary of Agarwal et al. ("Mergeable Summaries", PODS 2012, §3).
//
// The primitive is the equal-weight merge (§3.2): two sorted blocks of
// s samples, each sample representing weight w, are merged by sorting
// their union (2s values) and keeping alternate values starting at a
// random offset — s samples of weight 2w. Each such merge is an
// unbiased rank estimator and its error telescopes across any merge
// tree, which is what makes the summary *fully* mergeable, unlike GK.
//
// Unequal weights are handled by the logarithmic technique (§3.3): the
// summary is a binary-counter-like hierarchy where level i holds at
// most one block of s samples of weight 2^i, plus a partial buffer of
// raw (weight-1) values. Inserting and merging cascade carries up the
// hierarchy exactly like binary addition.
//
// With s = Θ((1/ε)·√log(1/ε)) the rank error is at most εn with high
// probability under arbitrary merge topologies (the paper's Theorem
// 3.4); see NewEpsilon.
package randquant

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/gen"
)

// Summary is a randomized mergeable quantile summary. The zero value
// is not usable; use New or NewEpsilon. Summaries are not safe for
// concurrent use.
type Summary struct {
	s       int         // samples per block
	n       uint64      // exact number of inserted values (incl. merges)
	partial []float64   // < s raw values at weight 1, unsorted
	blocks  [][]float64 // blocks[i]: nil or sorted block of s samples at weight 2^i
	rng     *gen.RNG
}

// New returns an empty summary with block size s >= 1 and a
// deterministic random seed.
func New(s int, seed uint64) *Summary {
	if s < 1 {
		panic("randquant: block size must be >= 1")
	}
	return &Summary{s: s, rng: gen.NewRNG(seed)}
}

// NewEpsilon returns a summary sized for rank error at most eps*n with
// high probability: s = ceil((2/eps)·sqrt(log2(1/eps)+1)), the paper's
// Θ((1/ε)√log(1/ε)) with an empirically validated constant.
func NewEpsilon(eps float64, seed uint64) *Summary {
	if eps <= 0 || eps >= 1 {
		panic("randquant: eps must be in (0, 1)")
	}
	s := int(math.Ceil(2 / eps * math.Sqrt(math.Log2(1/eps)+1)))
	return New(s, seed)
}

// BlockSize returns the number of samples per block.
func (s *Summary) BlockSize() int { return s.s }

// N returns the exact number of values summarized, including merges.
func (s *Summary) N() uint64 { return s.n }

// Size returns the total number of stored samples.
func (s *Summary) Size() int {
	total := len(s.partial)
	for _, b := range s.blocks {
		total += len(b)
	}
	return total
}

// Levels returns the number of levels in the hierarchy (the index of
// the highest occupied block + 1, or 0).
func (s *Summary) Levels() int {
	top := 0
	for i, b := range s.blocks {
		if b != nil {
			top = i + 1
		}
	}
	return top
}

// Update inserts one value.
func (s *Summary) Update(v float64) {
	if math.IsNaN(v) {
		panic("randquant: NaN has no rank")
	}
	s.n++
	s.partial = append(s.partial, v)
	if len(s.partial) >= s.s {
		s.promotePartial()
	}
}

// promotePartial turns the (full) partial buffer into a level-0 block
// and cascades the carry.
func (s *Summary) promotePartial() {
	b := make([]float64, len(s.partial))
	copy(b, s.partial)
	sort.Float64s(b)
	s.partial = s.partial[:0]
	s.carry(b, 0)
}

// carry places a block at level i, performing equal-weight merges up
// the hierarchy while the slot is occupied — binary-counter addition.
func (s *Summary) carry(b []float64, i int) {
	for {
		for len(s.blocks) <= i {
			s.blocks = append(s.blocks, nil)
		}
		if s.blocks[i] == nil {
			s.blocks[i] = b
			return
		}
		b = s.equalMerge(s.blocks[i], b)
		s.blocks[i] = nil
		i++
	}
}

// equalMerge is the paper's §3.2 primitive: merge two sorted blocks of
// equal sample weight into one block of half the union's length by
// keeping alternate elements of the sorted union, starting at a random
// offset. Both inputs must have length s.s.
func (s *Summary) equalMerge(a, b []float64) []float64 {
	union := make([]float64, 0, len(a)+len(b))
	ai, bi := 0, 0
	for ai < len(a) || bi < len(b) {
		if bi >= len(b) || (ai < len(a) && a[ai] <= b[bi]) {
			union = append(union, a[ai])
			ai++
		} else {
			union = append(union, b[bi])
			bi++
		}
	}
	offset := 0
	if s.rng.Bool() {
		offset = 1
	}
	out := make([]float64, 0, (len(union)+1)/2)
	for i := offset; i < len(union); i += 2 {
		out = append(out, union[i])
	}
	return out
}

// Merge folds other into s. Blocks are combined level-wise with
// binary-counter carries; partial buffers are concatenated (promoting
// a full block if they overflow). The resulting summary is distributed
// exactly as a summary built by any other merge order over the same
// data — full mergeability (PODS'12 Theorem 3.4). Summaries must share
// the block size.
//
// other is not modified.
func (s *Summary) Merge(other *Summary) error {
	if other == nil {
		return core.ErrNilSummary
	}
	if s.s != other.s {
		return fmt.Errorf("%w: block size %d vs %d", core.ErrMismatchedShape, s.s, other.s)
	}
	s.n += other.n
	for i := len(other.blocks) - 1; i >= 0; i-- {
		if other.blocks[i] != nil {
			b := make([]float64, len(other.blocks[i]))
			copy(b, other.blocks[i])
			s.carry(b, i)
		}
	}
	for _, v := range other.partial {
		s.partial = append(s.partial, v)
		if len(s.partial) >= s.s {
			s.promotePartial()
		}
	}
	return nil
}

// Merged returns the merge of a and b without modifying either.
func Merged(a, b *Summary) (*Summary, error) {
	out := a.Clone()
	if err := out.Merge(b); err != nil {
		return nil, err
	}
	return out, nil
}

// Rank estimates the number of inserted values <= v: the weighted
// count of stored samples <= v. The estimator is unbiased and within
// εn w.h.p. for NewEpsilon summaries.
func (s *Summary) Rank(v float64) uint64 {
	var r uint64
	for i, b := range s.blocks {
		if b == nil {
			continue
		}
		c := sort.Search(len(b), func(j int) bool { return b[j] > v })
		r += uint64(c) << uint(i)
	}
	for _, x := range s.partial {
		if x <= v {
			r++
		}
	}
	return r
}

// weighted is one stored sample with its level weight.
type weighted struct {
	v float64
	w uint64
}

// samples returns all stored samples sorted by value.
func (s *Summary) samples() []weighted {
	out := make([]weighted, 0, s.Size())
	for i, b := range s.blocks {
		for _, v := range b {
			out = append(out, weighted{v: v, w: 1 << uint(i)})
		}
	}
	for _, v := range s.partial {
		out = append(out, weighted{v: v, w: 1})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].v < out[j].v })
	return out
}

// StoredWeight returns the total weight of stored samples. It can
// deviate from N by at most BlockSize-1 (the partial buffer rounding);
// for the plain summary the block hierarchy preserves weight exactly.
func (s *Summary) StoredWeight() uint64 {
	var w uint64
	for i, b := range s.blocks {
		w += uint64(len(b)) << uint(i)
	}
	return w + uint64(len(s.partial))
}

// Quantile returns a value whose rank is approximately phi*N: the
// smallest stored sample whose cumulative stored weight reaches
// phi*StoredWeight().
func (s *Summary) Quantile(phi float64) float64 {
	all := s.samples()
	if len(all) == 0 {
		return math.NaN()
	}
	if phi <= 0 {
		return all[0].v
	}
	if phi >= 1 {
		return all[len(all)-1].v
	}
	target := phi * float64(s.StoredWeight())
	var cum float64
	for _, ws := range all {
		cum += float64(ws.w)
		if cum >= target {
			return ws.v
		}
	}
	return all[len(all)-1].v
}

// Clone returns a deep copy sharing nothing with s. The clone's RNG
// state is re-derived so clone and original diverge on future random
// choices (still deterministically, per the original seed).
func (s *Summary) Clone() *Summary {
	c := New(s.s, s.rng.Uint64())
	c.n = s.n
	c.partial = append([]float64(nil), s.partial...)
	c.blocks = make([][]float64, len(s.blocks))
	for i, b := range s.blocks {
		if b != nil {
			c.blocks[i] = append([]float64(nil), b...)
		}
	}
	return c
}

// Reset restores the summary to its freshly-constructed state (the
// RNG keeps advancing rather than replaying).
func (s *Summary) Reset() {
	s.n = 0
	s.partial = s.partial[:0]
	s.blocks = s.blocks[:0]
}

// checkInvariants verifies structural invariants; used by tests.
func (s *Summary) checkInvariants() error {
	if len(s.partial) >= s.s {
		return fmt.Errorf("partial buffer size %d >= s=%d", len(s.partial), s.s)
	}
	for i, b := range s.blocks {
		if b == nil {
			continue
		}
		if len(b) != s.s {
			return fmt.Errorf("block %d has %d samples, want %d", i, len(b), s.s)
		}
		if !sort.Float64sAreSorted(b) {
			return fmt.Errorf("block %d not sorted", i)
		}
	}
	// Exact weight conservation: every insert is represented once.
	if s.StoredWeight() != s.n {
		return fmt.Errorf("stored weight %d != n %d", s.StoredWeight(), s.n)
	}
	return nil
}

var _ core.QuantileSummary = (*Summary)(nil)
