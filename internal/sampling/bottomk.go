// Package sampling implements random-sample summaries for rank and
// quantile estimation: the mergeable bottom-k sample (every occurrence
// draws an i.i.d. priority tag; the summary keeps the k smallest tags,
// and merging keeps the k smallest of the union — §3.3 of the PODS'12
// paper uses exactly this primitive to make sampling mergeable) and a
// classic Vitter reservoir sample as the non-mergeable single-stream
// baseline.
//
// A bottom-k sample of size k answers rank queries with standard error
// about n/√k, the usual sampling trade-off the paper's quantile
// summaries beat at equal space.
package sampling

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/gen"
)

// tagged is one sampled value with its priority tag.
type tagged struct {
	tag uint64
	v   float64
}

// tagHeap is a max-heap on tags, so the root is the largest kept tag
// (the first to be displaced).
type tagHeap []tagged

func (h tagHeap) Len() int            { return len(h) }
func (h tagHeap) Less(i, j int) bool  { return h[i].tag > h[j].tag }
func (h tagHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *tagHeap) Push(x interface{}) { *h = append(*h, x.(tagged)) }
func (h *tagHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// pushConcrete and fixRoot are the batch path's non-boxing equivalents
// of heap.Push and heap.Fix(h, 0): identical comparison and swap order
// to container/heap, so a batch of updates leaves the heap in exactly
// the state the heap-package loop would — the batch-vs-loop state
// equality tests depend on that.

func (h *tagHeap) pushConcrete(t tagged) {
	*h = append(*h, t)
	h.up(len(*h) - 1)
}

func (h *tagHeap) fixRoot() { h.down(0) }

func (h tagHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || h[j].tag <= h[i].tag {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h tagHeap) down(i int) {
	n := len(h)
	for {
		j := 2*i + 1
		if j >= n || j < 0 { // j < 0 after int overflow
			break
		}
		if j2 := j + 1; j2 < n && h[j2].tag > h[j].tag {
			j = j2
		}
		if h[j].tag <= h[i].tag {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// BottomK is a mergeable uniform sample of up to k values. The zero
// value is not usable; use NewBottomK. Not safe for concurrent use.
type BottomK struct {
	k    int
	n    uint64
	keep tagHeap
	rng  *gen.RNG
}

// NewBottomK returns an empty sample of capacity k with a
// deterministic tag-generation seed.
func NewBottomK(k int, seed uint64) *BottomK {
	if k < 1 {
		panic("sampling: k must be >= 1")
	}
	return &BottomK{k: k, rng: gen.NewRNG(seed)}
}

// K returns the sample capacity.
func (s *BottomK) K() int { return s.k }

// N returns the number of values observed, including merged-in ones.
func (s *BottomK) N() uint64 { return s.n }

// Size returns the current sample size (min(k, n)).
func (s *BottomK) Size() int { return len(s.keep) }

// Update observes one value: it draws a fresh uniform tag and is kept
// iff its tag is among the k smallest seen.
func (s *BottomK) Update(v float64) {
	if math.IsNaN(v) {
		panic("sampling: NaN has no rank")
	}
	s.n++
	t := tagged{tag: s.rng.Uint64(), v: v}
	if len(s.keep) < s.k {
		heap.Push(&s.keep, t)
		return
	}
	if t.tag < s.keep[0].tag {
		s.keep[0] = t
		heap.Fix(&s.keep, 0)
	}
}

// Merge folds other into s: the union's k smallest tags are kept,
// which is distributed exactly as a bottom-k sample of the combined
// stream — the mergeability property. Capacities must match; other is
// not modified.
func (s *BottomK) Merge(other *BottomK) error {
	if other == nil {
		return core.ErrNilSummary
	}
	if s.k != other.k {
		return core.ErrMismatchedK
	}
	s.n += other.n
	for _, t := range other.keep {
		if len(s.keep) < s.k {
			heap.Push(&s.keep, t)
		} else if t.tag < s.keep[0].tag {
			s.keep[0] = t
			heap.Fix(&s.keep, 0)
		}
	}
	return nil
}

// Merged returns the merge of a and b without modifying either.
func Merged(a, b *BottomK) (*BottomK, error) {
	out := a.Clone()
	if err := out.Merge(b); err != nil {
		return nil, err
	}
	return out, nil
}

// Values returns the sampled values, sorted.
func (s *BottomK) Values() []float64 {
	out := make([]float64, len(s.keep))
	for i, t := range s.keep {
		out[i] = t.v
	}
	sort.Float64s(out)
	return out
}

// Rank estimates the number of observed values <= v by scaling the
// sample fraction to n.
func (s *BottomK) Rank(v float64) uint64 {
	if len(s.keep) == 0 {
		return 0
	}
	var c int
	for _, t := range s.keep {
		if t.v <= v {
			c++
		}
	}
	return uint64(float64(c) / float64(len(s.keep)) * float64(s.n))
}

// Quantile returns the sample's phi-quantile.
func (s *BottomK) Quantile(phi float64) float64 {
	vals := s.Values()
	if len(vals) == 0 {
		return math.NaN()
	}
	i := int(phi * float64(len(vals)))
	if i >= len(vals) {
		i = len(vals) - 1
	}
	if i < 0 {
		i = 0
	}
	return vals[i]
}

// Clone returns a deep copy (with a re-derived RNG).
func (s *BottomK) Clone() *BottomK {
	c := NewBottomK(s.k, s.rng.Uint64())
	c.n = s.n
	c.keep = append(tagHeap(nil), s.keep...)
	return c
}

// Reset restores the sample to its freshly-constructed state.
func (s *BottomK) Reset() {
	s.n = 0
	s.keep = s.keep[:0]
}

// MarshalBinary implements encoding.BinaryMarshaler. The payload is
// built in a pooled, pre-sized buffer.
func (s *BottomK) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	w.Grow(4*10 + len(s.keep)*(10+8))
	w.Int(s.k)
	w.Uint64(s.n)
	w.Uint64(s.rng.State())
	w.Int(len(s.keep))
	for _, t := range s.keep {
		w.Uint64(t.tag)
		w.Float64(t.v)
	}
	return codec.EncodeFrame(codec.KindBottomK, w.Bytes()), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *BottomK) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindBottomK, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	k := r.Int()
	n := r.Uint64()
	seed := r.Uint64()
	m := r.ArrayLen(9)
	if r.Err() != nil {
		return r.Err()
	}
	if k < 1 {
		return fmt.Errorf("sampling: invalid k %d in frame", k)
	}
	if m > k {
		return fmt.Errorf("sampling: sample size %d exceeds k %d", m, k)
	}
	out := NewBottomK(k, seed)
	out.n = n
	for i := 0; i < m; i++ {
		out.keep = append(out.keep, tagged{tag: r.Uint64(), v: r.Float64()})
	}
	if err := r.Finish(); err != nil {
		return err
	}
	heap.Init(&out.keep)
	*s = *out
	return nil
}

var _ core.QuantileSummary = (*BottomK)(nil)

// Reservoir is a classic Vitter reservoir sample of capacity k: the
// single-stream baseline. It deliberately has no Merge — merging
// reservoirs correctly requires resampling machinery the bottom-k
// scheme gets for free, which is the point of including it.
type Reservoir struct {
	k    int
	n    uint64
	vals []float64
	rng  *gen.RNG
}

// NewReservoir returns an empty reservoir of capacity k.
func NewReservoir(k int, seed uint64) *Reservoir {
	if k < 1 {
		panic("sampling: k must be >= 1")
	}
	return &Reservoir{k: k, rng: gen.NewRNG(seed)}
}

// K returns the capacity.
func (s *Reservoir) K() int { return s.k }

// N returns the number of observed values.
func (s *Reservoir) N() uint64 { return s.n }

// Size returns the current sample size.
func (s *Reservoir) Size() int { return len(s.vals) }

// Update observes one value.
func (s *Reservoir) Update(v float64) {
	s.n++
	if len(s.vals) < s.k {
		s.vals = append(s.vals, v)
		return
	}
	// Keep with probability k/n, replacing a uniform victim.
	if j := s.rng.Uint64n(s.n); j < uint64(s.k) {
		s.vals[j] = v
	}
}

// Values returns the sampled values, sorted.
func (s *Reservoir) Values() []float64 {
	out := append([]float64(nil), s.vals...)
	sort.Float64s(out)
	return out
}

// Rank estimates the number of observed values <= v.
func (s *Reservoir) Rank(v float64) uint64 {
	if len(s.vals) == 0 {
		return 0
	}
	var c int
	for _, x := range s.vals {
		if x <= v {
			c++
		}
	}
	return uint64(float64(c) / float64(len(s.vals)) * float64(s.n))
}

// Quantile returns the sample's phi-quantile.
func (s *Reservoir) Quantile(phi float64) float64 {
	vals := s.Values()
	if len(vals) == 0 {
		return math.NaN()
	}
	i := int(phi * float64(len(vals)))
	if i >= len(vals) {
		i = len(vals) - 1
	}
	if i < 0 {
		i = 0
	}
	return vals[i]
}

var _ core.QuantileSummary = (*Reservoir)(nil)
