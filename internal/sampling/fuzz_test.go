package sampling

import (
	"testing"

	"repro/internal/gen"
)

func FuzzUnmarshal(f *testing.F) {
	s := NewBottomK(16, 1)
	for _, v := range gen.UniformValues(200, 1) {
		s.Update(v)
	}
	seed, _ := s.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out BottomK
		if err := out.UnmarshalBinary(data); err != nil {
			return
		}
		if out.Size() > out.K() {
			t.Fatal("accepted frame overflows capacity")
		}
		if _, err := out.MarshalBinary(); err != nil {
			t.Fatalf("accepted frame failed to re-marshal: %v", err)
		}
	})
}
