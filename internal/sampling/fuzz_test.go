package sampling

import (
	"bytes"
	"testing"

	"repro/internal/gen"
)

func FuzzUnmarshal(f *testing.F) {
	s := NewBottomK(16, 1)
	for _, v := range gen.UniformValues(200, 1) {
		s.Update(v)
	}
	seed, _ := s.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out BottomK
		if err := out.UnmarshalBinary(data); err != nil {
			return
		}
		if out.Size() > out.K() {
			t.Fatal("accepted frame overflows capacity")
		}
		// Accepted frames must round-trip to a canonical fixpoint:
		// re-encode, decode, re-encode byte-identically.
		canon, err := out.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted frame failed to re-marshal: %v", err)
		}
		var again BottomK
		if err := again.UnmarshalBinary(canon); err != nil {
			t.Fatalf("re-marshaled frame rejected: %v", err)
		}
		canon2, err := again.MarshalBinary()
		if err != nil {
			t.Fatalf("second re-marshal: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatal("encode/decode/encode is not a fixpoint")
		}
	})
}
