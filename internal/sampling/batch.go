package sampling

import "math"

// UpdateBatch observes every value in vs. The resulting state is
// identical to calling Update(v) for each v in order (the same tag
// draws are consumed in the same order, and the concrete sift helpers
// replay container/heap's moves exactly).
//
//sketch:hotpath
func (s *BottomK) UpdateBatch(vs []float64) {
	for _, v := range vs {
		if math.IsNaN(v) {
			panic("sampling: NaN has no rank")
		}
		s.n++
		t := tagged{tag: s.rng.Uint64(), v: v}
		if len(s.keep) < s.k {
			s.keep.pushConcrete(t)
			continue
		}
		if t.tag < s.keep[0].tag {
			s.keep[0] = t
			s.keep.fixRoot()
		}
	}
}
