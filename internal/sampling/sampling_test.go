package sampling

import (
	"math"
	"sort"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
)

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"bottomk":   func() { NewBottomK(0, 1) },
		"reservoir": func() { NewReservoir(0, 1) },
		"nan":       func() { NewBottomK(4, 1).Update(math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBottomKSmallStreamExact(t *testing.T) {
	s := NewBottomK(100, 1)
	vals := []float64{5, 1, 9, 3, 7}
	for _, v := range vals {
		s.Update(v)
	}
	if s.Size() != 5 || s.N() != 5 {
		t.Fatalf("Size=%d N=%d", s.Size(), s.N())
	}
	if r := s.Rank(4); r != 2 {
		t.Errorf("Rank(4) = %d, want 2", r)
	}
	got := s.Values()
	want := []float64{1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v", got)
		}
	}
}

func TestBottomKCapacity(t *testing.T) {
	s := NewBottomK(10, 2)
	for _, v := range gen.UniformValues(10000, 3) {
		s.Update(v)
	}
	if s.Size() != 10 {
		t.Fatalf("Size = %d, want 10", s.Size())
	}
	if s.N() != 10000 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestBottomKRankAccuracy(t *testing.T) {
	const n = 100000
	const k = 10000
	vals := gen.UniformValues(n, 5)
	s := NewBottomK(k, 7)
	for _, v := range vals {
		s.Update(v)
	}
	oracle := exact.QuantilesOf(vals)
	// Standard error ~ n/sqrt(k); allow 5 sigma.
	slack := uint64(5 * float64(n) / math.Sqrt(k))
	for _, v := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		got, want := s.Rank(v), oracle.Rank(v)
		diff := got - want
		if want > got {
			diff = want - got
		}
		if diff > slack {
			t.Errorf("Rank(%v) = %d, true %d, |err| > %d", v, got, want, slack)
		}
	}
}

// Mergeability: merging two bottom-k samples is exactly the bottom-k
// of the union of their tagged occurrences.
func TestBottomKMergeIsUnionBottomK(t *testing.T) {
	a, b := NewBottomK(50, 1), NewBottomK(50, 2)
	va := gen.UniformValues(5000, 3)
	vb := gen.UniformValues(3000, 4)
	for _, v := range va {
		a.Update(v)
	}
	for _, v := range vb {
		b.Update(v)
	}
	// Reconstruct the expected union: tags are deterministic per seed.
	type tv struct {
		tag uint64
		v   float64
	}
	var all []tv
	rngA := gen.NewRNG(1)
	for _, v := range va {
		all = append(all, tv{rngA.Uint64(), v})
	}
	rngB := gen.NewRNG(2)
	for _, v := range vb {
		all = append(all, tv{rngB.Uint64(), v})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].tag < all[j].tag })
	wantVals := make([]float64, 0, 50)
	for _, x := range all[:50] {
		wantVals = append(wantVals, x.v)
	}
	sort.Float64s(wantVals)

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := a.Values()
	if len(got) != 50 {
		t.Fatalf("merged size = %d", len(got))
	}
	for i := range wantVals {
		if got[i] != wantVals[i] {
			t.Fatalf("merged sample differs from union bottom-k at %d: %v vs %v", i, got[i], wantVals[i])
		}
	}
	if a.N() != 8000 {
		t.Fatalf("N = %d", a.N())
	}
}

func TestBottomKMergeMismatched(t *testing.T) {
	a := NewBottomK(10, 1)
	if err := a.Merge(NewBottomK(20, 1)); err == nil {
		t.Error("mismatched k accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestBottomKMergeTreeAccuracy(t *testing.T) {
	const n = 120000
	const k = 4096
	vals := gen.NormalValues(n, 9)
	oracle := exact.QuantilesOf(vals)
	parts := gen.PartitionRandomSizes(vals, 16, 4)
	samples := make([]*BottomK, len(parts))
	for i, p := range parts {
		samples[i] = NewBottomK(k, uint64(i)+10)
		for _, v := range p {
			samples[i].Update(v)
		}
	}
	for len(samples) > 1 {
		var next []*BottomK
		for i := 0; i+1 < len(samples); i += 2 {
			if err := samples[i].Merge(samples[i+1]); err != nil {
				t.Fatal(err)
			}
			next = append(next, samples[i])
		}
		if len(samples)%2 == 1 {
			next = append(next, samples[len(samples)-1])
		}
		samples = next
	}
	m := samples[0]
	if m.N() != n || m.Size() != k {
		t.Fatalf("N=%d Size=%d", m.N(), m.Size())
	}
	slack := uint64(5 * float64(n) / math.Sqrt(k))
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		got := m.Quantile(phi)
		trueRank := oracle.Rank(got)
		target := uint64(phi * float64(n))
		diff := trueRank - target
		if target > trueRank {
			diff = target - trueRank
		}
		if diff > slack {
			t.Errorf("phi=%v: rank error %d > %d", phi, diff, slack)
		}
	}
}

func TestBottomKCloneReset(t *testing.T) {
	s := NewBottomK(10, 1)
	for _, v := range gen.UniformValues(100, 2) {
		s.Update(v)
	}
	c := s.Clone()
	c.Update(0.5)
	if c.N() != s.N()+1 {
		t.Fatal("clone not independent")
	}
	s.Reset()
	if s.N() != 0 || s.Size() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestBottomKCodecRoundTrip(t *testing.T) {
	s := NewBottomK(64, 5)
	for _, v := range gen.UniformValues(5000, 6) {
		s.Update(v)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got BottomK
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.N() != s.N() || got.K() != s.K() || got.Size() != s.Size() {
		t.Fatal("header changed")
	}
	gv, sv := got.Values(), s.Values()
	for i := range sv {
		if gv[i] != sv[i] {
			t.Fatal("values changed")
		}
	}
	data[len(data)-5] ^= 0xff
	if err := got.UnmarshalBinary(data); err == nil {
		t.Fatal("corrupted frame accepted")
	}
}

func TestReservoirBasics(t *testing.T) {
	s := NewReservoir(10, 1)
	for _, v := range gen.UniformValues(10000, 3) {
		s.Update(v)
	}
	if s.Size() != 10 || s.N() != 10000 {
		t.Fatalf("Size=%d N=%d", s.Size(), s.N())
	}
	if q := s.Quantile(0.5); q < 0 || q >= 1 {
		t.Errorf("Quantile(0.5) = %v outside value range", q)
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each element should be kept with probability ~k/n; check the
	// mean sampled value is ~0.5 over many repetitions.
	var sum float64
	const reps = 200
	for r := 0; r < reps; r++ {
		s := NewReservoir(20, uint64(r))
		for _, v := range gen.UniformValues(2000, uint64(r)+1000) {
			s.Update(v)
		}
		for _, v := range s.Values() {
			sum += v
		}
	}
	mean := sum / (20 * reps)
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("reservoir mean = %v, want ~0.5", mean)
	}
}

func TestReservoirSmall(t *testing.T) {
	s := NewReservoir(100, 1)
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("empty reservoir quantile should be NaN")
	}
	if s.Rank(1) != 0 {
		t.Error("empty reservoir rank should be 0")
	}
	s.Update(3)
	if r := s.Rank(3); r != 1 {
		t.Errorf("Rank(3) = %d", r)
	}
}
