package sampling

import (
	"repro/internal/codec"
	"repro/internal/gen"
	"repro/internal/registry"
)

// init catalogs the family; see internal/registry. Reservoir is
// deliberately absent: it is the non-mergeable baseline and has no
// codec.
func init() {
	registry.Register[BottomK](codec.KindBottomK, "bottomk", registry.Spec[BottomK]{
		Example: func(n int) *BottomK {
			s := NewBottomK(256, 8)
			for _, v := range gen.UniformValues(n, 8) {
				s.Update(v)
			}
			return s
		},
		Merge: (*BottomK).Merge,
		N:     (*BottomK).N,
	})
}
