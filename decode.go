package mergesum

import (
	"fmt"

	"repro/internal/registry"
	// Every family registers itself; linking the catalog here means any
	// program importing mergesum can decode any frame the library (or a
	// summaryd server) produces.
	_ "repro/internal/registry/all"
)

// Kinds returns the canonical wire names of every summary family in
// the registry catalog, in wire-tag order — the same names summaryd
// accepts in PUSH commands and reports in PULL/STAT replies.
func Kinds() []string { return registry.Names() }

// Decode decodes a wire frame of the named kind into a fresh summary
// of the family's concrete type (e.g. *MisraGries for "mg"). The frame
// carries its own kind tag, which must agree with the requested name;
// a mismatch is an error, never a misparse.
func Decode(kind string, data []byte) (any, error) {
	ent, ok := registry.ByName(kind)
	if !ok {
		return nil, fmt.Errorf("mergesum: unknown kind %q (have %v)", kind, Kinds())
	}
	return ent.Decode(data)
}

// DecodeAny decodes a wire frame using the kind tag the frame itself
// carries, returning the kind's canonical name and the decoded summary.
// Use it when the caller does not know the frame's family up front —
// e.g. frames pulled from a mixed set of summaryd slots.
func DecodeAny(data []byte) (string, any, error) {
	ent, err := registry.FromFrame(data)
	if err != nil {
		return "", nil, fmt.Errorf("mergesum: %w", err)
	}
	v, err := ent.Decode(data)
	if err != nil {
		return "", nil, err
	}
	return ent.Name(), v, nil
}
