// Quickstart: build two Misra–Gries summaries on two halves of a
// stream, merge them, and query — the 30-second tour of the library.
package main

import (
	"fmt"

	mergesum "repro"
)

func main() {
	// A skewed stream: item 7 is hot, everything else is noise.
	var stream []mergesum.Item
	for i := 0; i < 10000; i++ {
		if i%3 == 0 {
			stream = append(stream, 7)
		} else {
			stream = append(stream, mergesum.Item(i))
		}
	}

	// Two sites each see half the stream, ingested via the batch path
	// (one call per site instead of one per item).
	left, right := mergesum.NewMisraGries(8), mergesum.NewMisraGries(8)
	left.UpdateBatch(stream[:len(stream)/2])
	right.UpdateBatch(stream[len(stream)/2:])

	// Merge right into left. The merged summary obeys the same error
	// bound n/(k+1) as a single summary over the whole stream — that
	// is the mergeability theorem.
	if err := left.Merge(right); err != nil {
		panic(err)
	}

	fmt.Printf("stream length: %d\n", left.N())
	fmt.Printf("error bound:   %d (certificate %d)\n",
		mergesum.MGBound(left.N(), left.K()), left.ErrorBound())

	est := left.Estimate(7)
	fmt.Printf("item 7:        estimate %s (true count 3334)\n", est)

	threshold := mergesum.HeavyThreshold(left.N(), 10)
	fmt.Printf("heavy hitters above %d:\n", threshold)
	for _, c := range left.HeavyHitters(threshold) {
		fmt.Printf("  item %d ~%d\n", c.Item, c.Count)
	}

	// The same library also does quantiles: a mergeable summary of a
	// value stream.
	q := mergesum.NewQuantile(0.01, 42)
	vals := make([]float64, 100000)
	for i := range vals {
		vals[i] = float64(i)
	}
	q.UpdateBatch(vals)
	fmt.Printf("median of 0..99999 ~ %.0f, p99 ~ %.0f\n", q.Quantile(0.5), q.Quantile(0.99))
}
