// Quantiles tracks request-latency percentiles across shards: each of
// 12 shards summarizes its own log-normal latency stream with the
// randomized mergeable quantile summary; the control plane merges them
// in a binary tree and reads off p50/p95/p99/p999, compared against
// the exact values. A hybrid summary runs alongside to show its size
// staying flat as the stream grows.
package main

import (
	"fmt"

	mergesum "repro"
	"repro/internal/exact"
	"repro/internal/gen"
)

const (
	shards   = 12
	perShard = 80000
	eps      = 0.005
)

func main() {
	// Simulated latencies: log-normal, with shard 0 degraded (a slow
	// replica) so the merged tail is dominated by one shard — the case
	// where per-shard percentile averaging (the common wrong approach)
	// fails and mergeable summaries shine.
	var all []float64
	summaries := make([]*mergesum.Quantile, shards)
	hybrid := mergesum.NewQuantileHybrid(0.01, 99)
	for s := 0; s < shards; s++ {
		mu, sigma := 1.0, 0.5
		if s == 0 {
			mu, sigma = 2.2, 0.7 // degraded shard
		}
		lat := gen.LogNormalValues(perShard, mu, sigma, uint64(s)+1)
		summaries[s] = mergesum.NewQuantile(eps, uint64(s)+100)
		summaries[s].UpdateBatch(lat)
		hybrid.UpdateBatch(lat)
		all = append(all, lat...)
	}

	merged, err := mergesum.MergeBinary(summaries, (*mergesum.Quantile).Merge)
	if err != nil {
		panic(err)
	}

	oracle := exact.QuantilesOf(all)
	n := merged.N()
	fmt.Printf("shards=%d requests=%d  merged summary: %d samples (%.3g%% of data)\n\n",
		shards, n, merged.Size(), 100*float64(merged.Size())/float64(n))
	fmt.Printf("%-8s %-12s %-12s %-12s\n", "phi", "merged", "exact", "rank err")
	for _, phi := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		got := merged.Quantile(phi)
		want := oracle.Quantile(phi)
		rankErr := float64(oracle.Rank(got)) - phi*float64(n)
		fmt.Printf("%-8g %-12.3f %-12.3f %+.4f%%\n", phi, got, want, 100*rankErr/float64(n))
	}

	fmt.Printf("\nhybrid summary: %d samples after %d values (sampling level %d) — size independent of n\n",
		hybrid.Size(), hybrid.N(), hybrid.SampleLevel())
	fmt.Printf("hybrid p99: %.3f (exact %.3f)\n", hybrid.Quantile(0.99), oracle.Quantile(0.99))

	// The wrong way, for contrast: averaging per-shard p99s.
	var avgP99 float64
	for _, s := range summaries {
		// Note: summaries were consumed by the merge; recompute from
		// scratch for the comparison.
		_ = s
	}
	perShardP99 := make([]float64, shards)
	for s := 0; s < shards; s++ {
		mu, sigma := 1.0, 0.5
		if s == 0 {
			mu, sigma = 2.2, 0.7
		}
		lat := gen.LogNormalValues(perShard, mu, sigma, uint64(s)+1)
		perShardP99[s] = gen.QuantileOf(lat, 0.99)
		avgP99 += perShardP99[s] / float64(shards)
	}
	fmt.Printf("\naveraging per-shard p99s would report %.3f — off by %+.1f%% from the true %.3f\n",
		avgP99, 100*(avgP99-oracle.Quantile(0.99))/oracle.Quantile(0.99), oracle.Quantile(0.99))
}
