// Distributed runs the full wire-level workflow on localhost TCP: an
// aggregator listens, 8 worker processes (goroutines here, but each
// speaking the real framed wire format) build Misra–Gries summaries
// over their shard of a Zipf stream and ship them as checksummed
// binary frames; the aggregator decodes, merges with the
// low-total-error algorithm, and reports — demonstrating that the
// codec plus merge layer is everything a real deployment needs.
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	mergesum "repro"
	"repro/internal/codec"
	"repro/internal/exact"
	"repro/internal/gen"
)

const (
	workers   = 8
	perWorker = 100000
	k         = 128
)

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	fmt.Printf("aggregator listening on %s, %d workers, %d items each\n", addr, workers, perWorker)

	// Shared ground truth for the final report.
	var truthMu sync.Mutex
	truth := exact.NewFreqTable()

	// Workers: build a summary over a private Zipf stream and ship it.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			z := gen.NewZipf(10000, 1.3, uint64(id)+1)
			s := mergesum.NewMisraGries(k)
			local := exact.NewFreqTable()
			shard := z.Stream(perWorker)
			s.UpdateBatch(shard)
			for _, x := range shard {
				local.Add(x, 1)
			}
			truthMu.Lock()
			truth.Merge(local)
			truthMu.Unlock()

			conn, err := net.Dial("tcp", addr)
			if err != nil {
				log.Fatalf("worker %d: %v", id, err)
			}
			defer conn.Close()
			data, err := s.MarshalBinary()
			if err != nil {
				log.Fatalf("worker %d: %v", id, err)
			}
			if _, err := conn.Write(data); err != nil {
				log.Fatalf("worker %d: %v", id, err)
			}
		}(w)
	}

	// Aggregator: accept one frame per worker and fold it in.
	agg := mergesum.NewMisraGries(k)
	received := 0
	for received < workers {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		payload, err := codec.ReadFrame(conn, codec.KindMisraGries)
		conn.Close()
		if err != nil {
			log.Fatalf("aggregator: bad frame: %v", err)
		}
		next := new(mergesum.MisraGries)
		if err := next.UnmarshalBinary(codec.EncodeFrame(codec.KindMisraGries, payload)); err != nil {
			log.Fatalf("aggregator: decode: %v", err)
		}
		if err := agg.MergeLowError(next); err != nil {
			log.Fatalf("aggregator: merge: %v", err)
		}
		received++
	}
	wg.Wait()
	ln.Close()

	n := agg.N()
	fmt.Printf("merged %d summaries, total weight %d, error bound %d (certificate %d)\n",
		workers, n, mergesum.MGBound(n, k), agg.ErrorBound())

	threshold := mergesum.HeavyThreshold(n, 50)
	fmt.Printf("\nflows above %d (1/50 of traffic):\n", threshold)
	missed := 0
	for _, c := range truth.HeavyHitters(threshold) {
		e := agg.Estimate(c.Item)
		ok := e.Contains(c.Count)
		if !ok {
			missed++
		}
		fmt.Printf("  item %-8d true %-8d est %s  interval-correct=%v\n",
			uint64(c.Item), c.Count, e, ok)
	}
	if missed > 0 {
		log.Fatalf("%d guarantee violations — should be impossible", missed)
	}
	fmt.Println("\nall intervals contain the true counts — wire round-trip preserved the guarantee")
}
