// Geostats demonstrates the geometric mergeable summaries (PODS'12
// §4–5) on a fleet-telemetry scenario: 10 regions each observe GPS-ish
// point clouds; each keeps (a) a range-counting ε-approximation for
// "how many events in this rectangle?" dashboards and (b) a
// directional-width kernel for "how spread out is the fleet?"
// monitoring. Headquarters merges both kinds and answers queries that
// are checked against the exact point set.
package main

import (
	"fmt"
	"math"

	mergesum "repro"
	"repro/internal/exact"
	"repro/internal/gen"
)

const (
	regions   = 10
	perRegion = 20000
)

func main() {
	box := mergesum.Rect{X0: 0, Y0: 0, X1: 1, Y1: 1}

	var all []mergesum.Point
	rangeSums := make([]*mergesum.RangeCounter, regions)
	kernels := make([]*mergesum.Kernel, regions)
	for r := 0; r < regions; r++ {
		// Each region's activity clusters differently.
		pts := gen.ClusteredPoints(perRegion, 3+r%4, 0.02+0.01*float64(r%3), uint64(r)+1)
		for i := range pts {
			// Clamp into the unit box so the dashboard box covers all.
			pts[i].X = math.Min(1, math.Max(0, pts[i].X))
			pts[i].Y = math.Min(1, math.Max(0, pts[i].Y))
		}
		rangeSums[r] = mergesum.NewRangeCounter(0.02, box, uint64(r)+50)
		kernels[r] = mergesum.NewKernel(0.05)
		for _, p := range pts {
			rangeSums[r].Update(p)
			kernels[r].Update(p)
		}
		all = append(all, pts...)
	}

	rc, err := mergesum.MergeBinary(rangeSums, (*mergesum.RangeCounter).Merge)
	if err != nil {
		panic(err)
	}
	kn, err := mergesum.MergeBinary(kernels, (*mergesum.Kernel).Merge)
	if err != nil {
		panic(err)
	}

	n := len(all)
	fmt.Printf("regions=%d events=%d  range summary: %d points (%.3g%% of data)\n\n",
		regions, n, rc.Size(), 100*float64(rc.Size())/float64(n))

	fmt.Printf("%-34s %-10s %-10s %-8s\n", "rectangle", "estimate", "exact", "err/n")
	for _, q := range []mergesum.Rect{
		{X0: 0, Y0: 0, X1: 0.5, Y1: 0.5},
		{X0: 0.25, Y0: 0.25, X1: 0.75, Y1: 0.75},
		{X0: 0.6, Y0: 0.1, X1: 0.95, Y1: 0.4},
		{X0: 0.05, Y0: 0.7, X1: 0.3, Y1: 0.98},
	} {
		got := rc.RangeCount(q)
		want := exact.RangeCount(all, q)
		diff := float64(got) - float64(want)
		fmt.Printf("[%.2f,%.2f]x[%.2f,%.2f]%12d %10d %8.4f%%\n",
			q.X0, q.X1, q.Y0, q.Y1, got, want, 100*math.Abs(diff)/float64(n))
	}

	fmt.Printf("\nfleet extent (kernel of %d extreme points):\n", len(kn.Points()))
	fmt.Printf("%-10s %-10s %-10s\n", "direction", "kernel", "exact")
	for _, deg := range []float64{0, 30, 60, 90, 120, 150} {
		theta := deg * math.Pi / 180
		fmt.Printf("%6.0f°    %-10.4f %-10.4f\n", deg, kn.Width(theta), exact.DirectionalWidth(all, theta))
	}
}
