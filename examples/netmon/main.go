// Netmon simulates the motivating scenario of the heavy-hitter
// literature: 16 network links each observe a skewed packet stream
// (Zipf over flow IDs); every link keeps a constant-space SpaceSaving
// summary; a collector star-merges all 16 summaries with the
// low-total-error algorithm and reports the flows exceeding 1% of the
// total traffic — verified against the exact per-flow counts.
package main

import (
	"fmt"

	mergesum "repro"
	"repro/internal/exact"
	"repro/internal/gen"
)

const (
	links      = 16
	packetsPer = 50000
	flows      = 20000
	zipfAlpha  = 1.2
	k          = 400 // counters per link: eps = 1/400 = 0.25%
	reportFrac = 100 // report flows above n/100
)

func main() {
	// Each link sees its own Zipf stream over a shared flow universe.
	// A shared generator assigns flow IDs so heavy flows are global.
	z := gen.NewZipf(flows, zipfAlpha, 7)
	truth := exact.NewFreqTable()
	summaries := make([]*mergesum.SpaceSaving, links)
	packets := make([]mergesum.Item, packetsPer)
	for l := 0; l < links; l++ {
		summaries[l] = mergesum.NewSpaceSaving(k)
		for i := range packets {
			packets[i] = z.Sample()
			truth.Add(packets[i], 1)
		}
		// Ingest the link's buffer through the batch path — how a real
		// collector would drain a packet ring.
		summaries[l].UpdateBatch(packets)
	}

	// Star merge at the collector, low-total-error variant.
	collector := summaries[0]
	for _, s := range summaries[1:] {
		if err := collector.MergeLowError(s); err != nil {
			panic(err)
		}
	}

	n := collector.N()
	threshold := mergesum.HeavyThreshold(n, reportFrac)
	fmt.Printf("links=%d packets=%d distinct flows=%d\n", links, n, truth.Distinct())
	fmt.Printf("per-link memory: %d counters (%.3g%% of distinct flows)\n",
		k, 100*float64(k)/float64(truth.Distinct()))
	fmt.Printf("reporting flows above %d packets (1/%d of traffic)\n\n", threshold, reportFrac)

	reported := collector.HeavyHitters(threshold)
	trueHH := truth.HeavyHitters(threshold)
	trueSet := make(map[mergesum.Item]uint64, len(trueHH))
	for _, c := range trueHH {
		trueSet[c.Item] = c.Count
	}

	fmt.Printf("%-10s %-22s %-10s\n", "flow", "estimate [interval]", "true")
	missedTrue := len(trueHH)
	for _, c := range reported {
		e := collector.Estimate(c.Item)
		trueCount, isTrue := trueSet[c.Item]
		marker := "  (candidate below threshold)"
		if isTrue {
			marker = ""
			missedTrue--
		}
		fmt.Printf("%-10d %-22s %-10d%s\n", uint64(c.Item), e.String(), trueCount, marker)
	}
	fmt.Printf("\ntrue heavy flows: %d, reported: %d, missed: %d (mergeability guarantees 0)\n",
		len(trueHH), len(reported), missedTrue)
	if missedTrue != 0 {
		panic("netmon: a true heavy hitter was missed — guarantee violated")
	}
}
