// Rollup demonstrates sliding-window monitoring built from tumbling
// epochs: a service ingests a skewed event stream whose hot keys drift
// over time; every "minute" the window advances, and dashboards ask
// for the heavy hitters and the latency p99 over the last 1, 5 and 15
// minutes. Each window answer is assembled by merging the retained
// epoch summaries — no per-window state is ever maintained — and is
// verified against exact computation over the same window.
package main

import (
	"fmt"

	mergesum "repro"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

const (
	minutes   = 30
	retain    = 15
	perMinute = 20000
	k         = 128
)

func main() {
	freqW := mergesum.NewWindowed(retain, func(uint64) *mergesum.MisraGries {
		return mergesum.NewMisraGries(k)
	})
	latW := mergesum.NewWindowed(retain, func(e uint64) *mergesum.Quantile {
		return mergesum.NewQuantile(0.01, e)
	})

	// Keep raw epochs for verification only.
	keyEpochs := make([][]mergesum.Item, 0, minutes)
	latEpochs := make([][]float64, 0, minutes)

	for m := 0; m < minutes; m++ {
		if m > 0 {
			freqW.Advance()
			latW.Advance()
		}
		// Hot keys drift: the Zipf permutation changes every 10 min.
		z := gen.NewZipf(5000, 1.4, uint64(m/10)+1)
		keys := z.Stream(perMinute)
		// Latency regime shifts at minute 20 (a deploy).
		mu := 1.0
		if m >= 20 {
			mu = 1.6
		}
		lats := gen.LogNormalValues(perMinute, mu, 0.5, uint64(m)+100)

		freqW.Current().UpdateBatch(keys)
		latW.Current().UpdateBatch(lats)
		keyEpochs = append(keyEpochs, keys)
		latEpochs = append(latEpochs, lats)
	}

	fmt.Printf("after %d minutes (%d events/min, retaining %d epochs):\n\n", minutes, perMinute, retain)
	fmt.Printf("%-8s %-14s %-22s %-12s %-12s\n", "window", "top key", "estimate [interval]", "p99 est", "p99 exact")
	for _, lastN := range []int{1, 5, 15} {
		fq, err := freqW.Query(lastN,
			func(s *mergesum.MisraGries) *mergesum.MisraGries { return s.Clone() },
			(*mergesum.MisraGries).Merge)
		if err != nil {
			panic(err)
		}
		lq, err := latW.Query(lastN,
			func(s *mergesum.Quantile) *mergesum.Quantile { return s.Clone() },
			(*mergesum.Quantile).Merge)
		if err != nil {
			panic(err)
		}

		// Exact over the same window.
		truth := exact.NewFreqTable()
		var lats []float64
		for i := minutes - lastN; i < minutes; i++ {
			for _, x := range keyEpochs[i] {
				truth.Add(x, 1)
			}
			lats = append(lats, latEpochs[i]...)
		}
		top := fq.Counters()[fq.Len()-1] // largest counter
		est := fq.Estimate(top.Item)
		if !est.Contains(truth.Count(top.Item)) {
			panic("window interval missed the exact count")
		}
		fmt.Printf("%-8s key=%-10d %-22s %-12.3f %-12.3f\n",
			fmt.Sprintf("%dm", lastN), uint64(top.Item), est.String(),
			lq.Quantile(0.99), gen.QuantileOf(lats, 0.99))
	}

	// The 15-minute window spans the deploy at minute 20, so its p99
	// sits between the 1-minute (all-new-regime) value and the old
	// regime's — visible above.
	_ = core.Item(0)
}
