// Cardinality demonstrates the mergeable distinct-count summaries on a
// unique-visitors scenario: 24 edge nodes each observe a stream of
// user IDs with heavy overlap (the same users hit many edges); each
// edge keeps a KMV and an HLL summary; the control plane merges all 24
// of each kind and reports global unique users — a query that is
// impossible to answer by adding per-edge numbers, and exactly what
// lossless mergeability solves.
package main

import (
	"fmt"
	"math"

	mergesum "repro"
	"repro/internal/core"
	"repro/internal/gen"
)

const (
	edges    = 24
	perEdge  = 50000
	universe = 300000 // global user population
)

func main() {
	global := make(map[mergesum.Item]bool)
	kmvs := make([]*mergesum.KMV, edges)
	hlls := make([]*mergesum.HLL, edges)
	var perEdgeDistinctSum float64
	for e := 0; e < edges; e++ {
		kmvs[e] = mergesum.NewKMV(1024, 7) // same seed everywhere
		hlls[e] = mergesum.NewHLL(12, 7)
		rng := gen.NewRNG(uint64(e) + 1)
		local := make(map[mergesum.Item]bool)
		users := make([]mergesum.Item, perEdge)
		for i := range users {
			// Users are Zipf-popular: hot users hit every edge.
			u := core.Item(rng.Uint64n(universe))
			if rng.Bool() { // half the traffic comes from a hot 1%
				u = core.Item(rng.Uint64n(universe / 100))
			}
			users[i] = u
			local[u] = true
			global[u] = true
		}
		kmvs[e].UpdateBatch(users)
		hlls[e].UpdateBatch(users)
		perEdgeDistinctSum += float64(len(local))
	}

	kmv, err := mergesum.MergeBinary(kmvs, (*mergesum.KMV).Merge)
	if err != nil {
		panic(err)
	}
	hll, err := mergesum.MergeBinary(hlls, (*mergesum.HLL).Merge)
	if err != nil {
		panic(err)
	}

	trueD := float64(len(global))
	fmt.Printf("edges=%d requests=%d true unique users=%d\n\n", edges, edges*perEdge, len(global))
	fmt.Printf("%-22s %-12s %-8s\n", "method", "estimate", "error")
	fmt.Printf("%-22s %-12.0f %+.2f%%   (double-counts shared users)\n",
		"sum of per-edge counts", perEdgeDistinctSum, 100*(perEdgeDistinctSum-trueD)/trueD)
	fmt.Printf("%-22s %-12.0f %+.2f%%   (1024 hashes, ~%d B)\n",
		"merged KMV", kmv.Estimate(), 100*(kmv.Estimate()-trueD)/trueD, 1024*8)
	fmt.Printf("%-22s %-12.0f %+.2f%%   (4096 registers, ~%d B)\n",
		"merged HLL", hll.Estimate(), 100*(hll.Estimate()-trueD)/trueD, 4096)

	if math.Abs(kmv.Estimate()-trueD)/trueD > 0.2 {
		panic("KMV estimate implausibly far off")
	}
	if math.Abs(hll.Estimate()-trueD)/trueD > 0.2 {
		panic("HLL estimate implausibly far off")
	}
}
