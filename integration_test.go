package mergesum_test

import (
	"sync"
	"testing"

	mergesum "repro"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/window"
)

// TestEndToEndPipeline drives the whole stack at moderate scale: a
// skewed item stream and a latency stream are sharded across sites;
// every summary family is built per site, shipped through the binary
// codec into a live summaryd, pulled back, and checked against exact
// oracles. Run with -short to skip.
func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration soak skipped in -short mode")
	}
	const (
		sites = 12
		n     = 240000
		k     = 128
		eps   = 0.01
	)
	itemStream := gen.NewZipf(8000, 1.25, 42).Stream(n)
	valStream := gen.LogNormalValues(n, 1, 0.6, 43)
	itemTruth := exact.FreqOf(itemStream)
	valOracle := exact.QuantilesOf(valStream)

	// Start the aggregation daemon.
	srv := server.New()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	defer func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	itemParts := gen.PartitionByHash(itemStream, sites, func(x core.Item) uint64 { return uint64(x) * 0x9e3779b1 })
	valParts := gen.PartitionContiguous(valStream, sites)

	// Each "site" builds all its summaries and pushes them.
	var wg sync.WaitGroup
	for site := 0; site < sites; site++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				t.Errorf("site %d dial: %v", id, err)
				return
			}
			defer c.Close()

			mgS := mergesum.NewMisraGries(k)
			ssS := mergesum.NewSpaceSaving(k)
			hll := mergesum.NewHLL(12, 7)
			for _, x := range itemParts[id] {
				mgS.Update(x, 1)
				ssS.Update(x, 1)
				hll.Update(x)
			}
			q := mergesum.NewQuantile(eps, uint64(id)+1)
			gkS := mergesum.NewGK(eps)
			for _, v := range valParts[id] {
				q.Update(v)
				gkS.Update(v)
			}
			for slot, push := range map[string]func() (uint64, error){
				"flows.mg":  func() (uint64, error) { return c.Push("flows.mg", "mg", mgS) },
				"flows.ss":  func() (uint64, error) { return c.Push("flows.ss", "ss", ssS) },
				"users.hll": func() (uint64, error) { return c.Push("users.hll", "hll", hll) },
				"lat.q":     func() (uint64, error) { return c.Push("lat.q", "quantile", q) },
				"lat.gk":    func() (uint64, error) { return c.Push("lat.gk", "gk", gkS) },
			} {
				if _, err := push(); err != nil {
					t.Errorf("site %d push %s: %v", id, slot, err)
				}
			}
		}(site)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Heavy hitters: both counter summaries must cover all true HHs.
	threshold := mergesum.HeavyThreshold(n, 200)
	trueHH := itemTruth.HeavyHitters(threshold)
	var mgM mergesum.MisraGries
	if _, err := c.Pull("flows.mg", &mgM); err != nil {
		t.Fatal(err)
	}
	var ssM mergesum.SpaceSaving
	if _, err := c.Pull("flows.ss", &ssM); err != nil {
		t.Fatal(err)
	}
	if mgM.N() != n || ssM.N() != n {
		t.Fatalf("pulled N: mg=%d ss=%d", mgM.N(), ssM.N())
	}
	for _, hh := range trueHH {
		if e := mgM.Estimate(hh.Item); !e.Contains(hh.Count) {
			t.Errorf("mg interval %v misses %d for item %d", e, hh.Count, hh.Item)
		}
		if e := ssM.Estimate(hh.Item); !e.Contains(hh.Count) {
			t.Errorf("ss interval %v misses %d for item %d", e, hh.Count, hh.Item)
		}
	}

	// Quantiles within eps.
	var qM mergesum.Quantile
	if _, err := c.Pull("lat.q", &qM); err != nil {
		t.Fatal(err)
	}
	for _, phi := range []float64{0.5, 0.95, 0.99} {
		got := qM.Quantile(phi)
		rank := valOracle.Rank(got)
		target := uint64(phi * float64(n))
		diff := rank - target
		if target > rank {
			diff = target - rank
		}
		if diff > uint64(eps*float64(n))+2 {
			t.Errorf("quantile phi=%v rank error %d", phi, diff)
		}
	}

	// Distinct count within 5%.
	var hllM mergesum.HLL
	if _, err := c.Pull("users.hll", &hllM); err != nil {
		t.Fatal(err)
	}
	est := hllM.Estimate()
	trueD := float64(itemTruth.Distinct())
	if est < trueD*0.95 || est > trueD*1.05 {
		t.Errorf("HLL estimate %v vs true %v", est, trueD)
	}

	// STAT sees all five slots with the right push counts.
	stats, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 5 {
		t.Fatalf("STAT rows = %d", len(stats))
	}
	for _, st := range stats {
		if st.Pushes != sites {
			t.Errorf("slot %s has %d pushes, want %d", st.Name, st.Pushes, sites)
		}
	}
}

// TestConcurrentShardedWindow composes the concurrency wrapper with
// the sliding window the way they are designed to stack: workers
// ingest into a Sharded summary; at each epoch boundary the shards are
// Drained, folded into one epoch summary with mg.MergeMany semantics
// (via MergeSequential), and stored in the Windowed ring; window
// queries then merge epochs. Every layer is pure mergeability.
func TestConcurrentShardedWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("integration soak skipped in -short mode")
	}
	const (
		epochs   = 6
		retain   = 4
		workers  = 4
		perEpoch = 8000
		k        = 64
	)
	mkShard := func(int) *mergesum.MisraGries { return mergesum.NewMisraGries(k) }
	sh := shard.New(workers, mkShard)
	w := window.New(retain, func(uint64) *mergesum.MisraGries { return mergesum.NewMisraGries(k) })
	truthByEpoch := make([]*exact.FreqTable, epochs)

	for e := 0; e < epochs; e++ {
		if e > 0 {
			w.Advance()
		}
		truth := exact.NewFreqTable()
		truthByEpoch[e] = truth
		var wg sync.WaitGroup
		var mu sync.Mutex
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				stream := gen.NewZipf(500, 1.4, uint64(e*10+id)+1).Stream(perEpoch / workers)
				local := exact.NewFreqTable()
				for _, x := range stream {
					sh.Update(uint64(x), func(s *mergesum.MisraGries) { s.Update(x, 1) })
					local.Add(x, 1)
				}
				mu.Lock()
				truth.Merge(local)
				mu.Unlock()
			}(wk)
		}
		wg.Wait()
		// Epoch boundary: drain the shards and fold them into the
		// window's current epoch.
		drained := sh.Drain(mkShard)
		epochSummary, err := mergesum.MergeSequential(drained, (*mergesum.MisraGries).Merge)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Current().Merge(epochSummary); err != nil {
			t.Fatal(err)
		}
	}

	for _, lastN := range []int{1, 2, 4} {
		q, err := w.Query(lastN,
			func(s *mergesum.MisraGries) *mergesum.MisraGries { return s.Clone() },
			(*mergesum.MisraGries).Merge)
		if err != nil {
			t.Fatal(err)
		}
		if q.N() != uint64(lastN*perEpoch) {
			t.Fatalf("lastN=%d: N=%d, want %d", lastN, q.N(), lastN*perEpoch)
		}
		truth := exact.NewFreqTable()
		for e := epochs - lastN; e < epochs; e++ {
			truth.Merge(truthByEpoch[e])
		}
		for _, c := range truth.Counters()[:5] {
			if e := q.Estimate(c.Item); !e.Contains(c.Count) {
				t.Errorf("lastN=%d: interval %v misses %d for item %d", lastN, e, c.Count, c.Item)
			}
		}
	}
}
