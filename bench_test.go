// Benchmarks regenerating every experiment of EXPERIMENTS.md
// (BenchmarkE01…BenchmarkE19, one per table/figure of the
// reproduction) plus per-operation microbenchmarks for every summary's
// update, merge and codec paths.
//
// Run: go test -bench=. -benchmem
package mergesum_test

import (
	"encoding"
	"fmt"
	"testing"

	mergesum "repro"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/spacesaving"
)

// benchCfg trims the experiments so a full -bench=. pass stays
// laptop-scale while still exercising every code path end to end.
func benchCfg() experiments.Config {
	return experiments.Config{N: 40000, Seed: 7, Quick: true}
}

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := e.Run(benchCfg())
		if len(res.Tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkE01(b *testing.B) { benchExperiment(b, "E01") }
func BenchmarkE02(b *testing.B) { benchExperiment(b, "E02") }
func BenchmarkE03(b *testing.B) { benchExperiment(b, "E03") }
func BenchmarkE04(b *testing.B) { benchExperiment(b, "E04") }
func BenchmarkE05(b *testing.B) { benchExperiment(b, "E05") }
func BenchmarkE06(b *testing.B) { benchExperiment(b, "E06") }
func BenchmarkE07(b *testing.B) { benchExperiment(b, "E07") }
func BenchmarkE08(b *testing.B) { benchExperiment(b, "E08") }
func BenchmarkE09(b *testing.B) { benchExperiment(b, "E09") }
func BenchmarkE10(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11(b *testing.B) { benchExperiment(b, "E11") }
func BenchmarkE12(b *testing.B) { benchExperiment(b, "E12") }
func BenchmarkE13(b *testing.B) { benchExperiment(b, "E13") }
func BenchmarkE14(b *testing.B) { benchExperiment(b, "E14") }
func BenchmarkE15(b *testing.B) { benchExperiment(b, "E15") }
func BenchmarkE16(b *testing.B) { benchExperiment(b, "E16") }
func BenchmarkE17(b *testing.B) { benchExperiment(b, "E17") }
func BenchmarkE18(b *testing.B) { benchExperiment(b, "E18") }
func BenchmarkE19(b *testing.B) { benchExperiment(b, "E19") }

// --- per-operation microbenchmarks -----------------------------------

const benchStreamLen = 1 << 16

func zipfStream() []mergesum.Item {
	return gen.NewZipf(benchStreamLen/16, 1.2, 1).Stream(benchStreamLen)
}

func BenchmarkMisraGriesUpdate(b *testing.B) {
	for _, k := range []int{64, 1024} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			stream := zipfStream()
			s := mergesum.NewMisraGries(k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Update(stream[i%len(stream)], 1)
			}
		})
	}
}

func BenchmarkSpaceSavingUpdate(b *testing.B) {
	for _, k := range []int{64, 1024} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			stream := zipfStream()
			s := mergesum.NewSpaceSaving(k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Update(stream[i%len(stream)], 1)
			}
		})
	}
}

func BenchmarkCountMinUpdate(b *testing.B) {
	stream := zipfStream()
	s := mergesum.NewCountMin(1024, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(stream[i%len(stream)], 1)
	}
}

func BenchmarkCountSketchUpdate(b *testing.B) {
	stream := zipfStream()
	s := mergesum.NewCountSketch(1024, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(stream[i%len(stream)], 1)
	}
}

func BenchmarkGKUpdate(b *testing.B) {
	vals := gen.UniformValues(benchStreamLen, 2)
	s := mergesum.NewGK(0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(vals[i%len(vals)])
	}
}

func BenchmarkQuantileUpdate(b *testing.B) {
	vals := gen.UniformValues(benchStreamLen, 2)
	s := mergesum.NewQuantile(0.01, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(vals[i%len(vals)])
	}
}

func BenchmarkQuantileHybridUpdate(b *testing.B) {
	vals := gen.UniformValues(benchStreamLen, 2)
	s := mergesum.NewQuantileHybrid(0.01, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(vals[i%len(vals)])
	}
}

func BenchmarkBottomKUpdate(b *testing.B) {
	vals := gen.UniformValues(benchStreamLen, 2)
	s := mergesum.NewBottomK(4096, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(vals[i%len(vals)])
	}
}

// --- batch ingestion microbenchmarks ---------------------------------
//
// Each BenchmarkXxxUpdateBatch mirrors its per-item BenchmarkXxxUpdate
// above, feeding the same stream in benchBatchLen-item slices; ns/op is
// per item in both, so the ratio is the batch-path speedup.

const benchBatchLen = 1024

func BenchmarkMisraGriesUpdateBatch(b *testing.B) {
	for _, k := range []int{64, 1024} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			stream := zipfStream()
			s := mergesum.NewMisraGries(k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += benchBatchLen {
				off := i % (len(stream) - benchBatchLen)
				s.UpdateBatch(stream[off : off+benchBatchLen])
			}
		})
	}
}

func BenchmarkSpaceSavingUpdateBatch(b *testing.B) {
	for _, k := range []int{64, 1024} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			stream := zipfStream()
			s := mergesum.NewSpaceSaving(k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += benchBatchLen {
				off := i % (len(stream) - benchBatchLen)
				s.UpdateBatch(stream[off : off+benchBatchLen])
			}
		})
	}
}

func BenchmarkCountMinUpdateBatch(b *testing.B) {
	stream := zipfStream()
	s := mergesum.NewCountMin(1024, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += benchBatchLen {
		off := i % (len(stream) - benchBatchLen)
		s.UpdateBatch(stream[off : off+benchBatchLen])
	}
}

func BenchmarkCountSketchUpdateBatch(b *testing.B) {
	stream := zipfStream()
	s := mergesum.NewCountSketch(1024, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += benchBatchLen {
		off := i % (len(stream) - benchBatchLen)
		s.UpdateBatch(stream[off : off+benchBatchLen])
	}
}

func BenchmarkGKUpdateBatch(b *testing.B) {
	vals := gen.UniformValues(benchStreamLen, 2)
	s := mergesum.NewGK(0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += benchBatchLen {
		off := i % (len(vals) - benchBatchLen)
		s.UpdateBatch(vals[off : off+benchBatchLen])
	}
}

func BenchmarkQuantileUpdateBatch(b *testing.B) {
	vals := gen.UniformValues(benchStreamLen, 2)
	s := mergesum.NewQuantile(0.01, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += benchBatchLen {
		off := i % (len(vals) - benchBatchLen)
		s.UpdateBatch(vals[off : off+benchBatchLen])
	}
}

func BenchmarkQuantileHybridUpdateBatch(b *testing.B) {
	vals := gen.UniformValues(benchStreamLen, 2)
	s := mergesum.NewQuantileHybrid(0.01, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += benchBatchLen {
		off := i % (len(vals) - benchBatchLen)
		s.UpdateBatch(vals[off : off+benchBatchLen])
	}
}

func BenchmarkBottomKUpdateBatch(b *testing.B) {
	vals := gen.UniformValues(benchStreamLen, 2)
	s := mergesum.NewBottomK(4096, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += benchBatchLen {
		off := i % (len(vals) - benchBatchLen)
		s.UpdateBatch(vals[off : off+benchBatchLen])
	}
}

func BenchmarkKMVUpdateBatch(b *testing.B) {
	stream := zipfStream()
	s := mergesum.NewKMV(1024, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += benchBatchLen {
		off := i % (len(stream) - benchBatchLen)
		s.UpdateBatch(stream[off : off+benchBatchLen])
	}
}

func BenchmarkHLLUpdateBatch(b *testing.B) {
	stream := zipfStream()
	s := mergesum.NewHLL(12, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += benchBatchLen {
		off := i % (len(stream) - benchBatchLen)
		s.UpdateBatch(stream[off : off+benchBatchLen])
	}
}

func BenchmarkTopKUpdateBatch(b *testing.B) {
	stream := zipfStream()
	s := mergesum.NewTopK(64, 512, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += benchBatchLen {
		off := i % (len(stream) - benchBatchLen)
		s.UpdateBatch(stream[off : off+benchBatchLen])
	}
}

func buildMG(k int, seed uint64) *mergesum.MisraGries {
	s := mergesum.NewMisraGries(k)
	for _, x := range gen.NewZipf(4096, 1.2, seed).Stream(benchStreamLen) {
		s.Update(x, 1)
	}
	return s
}

func BenchmarkMisraGriesMergePODS(b *testing.B) {
	a, c := buildMG(256, 1), buildMG(256, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := a.Clone()
		if err := m.Merge(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMisraGriesMergeLowError(b *testing.B) {
	a, c := buildMG(256, 1), buildMG(256, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := a.Clone()
		if err := m.MergeLowError(c); err != nil {
			b.Fatal(err)
		}
	}
}

func buildSS(k int, seed uint64) *mergesum.SpaceSaving {
	s := mergesum.NewSpaceSaving(k)
	for _, x := range gen.NewZipf(4096, 1.2, seed).Stream(benchStreamLen) {
		s.Update(x, 1)
	}
	return s
}

func BenchmarkSpaceSavingMergePODS(b *testing.B) {
	a, c := buildSS(256, 1), buildSS(256, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := a.Clone()
		if err := m.Merge(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpaceSavingMergeLowError(b *testing.B) {
	a, c := buildSS(256, 1), buildSS(256, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := a.Clone()
		if err := m.MergeLowError(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuantileMerge(b *testing.B) {
	build := func(seed uint64) *mergesum.Quantile {
		s := mergesum.NewQuantile(0.01, seed)
		for _, v := range gen.UniformValues(benchStreamLen, seed) {
			s.Update(v)
		}
		return s
	}
	a, c := build(1), build(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := a.Clone()
		if err := m.Merge(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGKMerge(b *testing.B) {
	build := func(seed uint64) *mergesum.GK {
		s := mergesum.NewGK(0.01)
		for _, v := range gen.UniformValues(benchStreamLen, seed) {
			s.Update(v)
		}
		return s
	}
	a, c := build(1), build(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := a.Clone()
		if err := m.Merge(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountMinMerge(b *testing.B) {
	a := mergesum.NewCountMin(1024, 4, 1)
	c := mergesum.NewCountMin(1024, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Merge(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMisraGriesCodec(b *testing.B) {
	s := buildMG(256, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := s.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var out mergesum.MisraGries
		if err := out.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuantileQuery(b *testing.B) {
	s := mergesum.NewQuantile(0.01, 1)
	for _, v := range gen.UniformValues(benchStreamLen, 1) {
		s.Update(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Quantile(0.99)
	}
}

func BenchmarkMisraGriesEstimate(b *testing.B) {
	s := buildMG(1024, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Estimate(mergesum.Item(i % 4096))
	}
}

// Ablation: stream-summary buckets (O(1) update) vs. binary heap
// (O(log k) update) behind the same SpaceSaving algorithm.
func BenchmarkSpaceSavingHeapUpdate(b *testing.B) {
	for _, k := range []int{64, 1024} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			stream := zipfStream()
			s := spacesaving.NewHeap(k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Update(stream[i%len(stream)], 1)
			}
		})
	}
}

func BenchmarkKMVUpdate(b *testing.B) {
	stream := zipfStream()
	s := mergesum.NewKMV(1024, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(stream[i%len(stream)])
	}
}

func BenchmarkHLLUpdate(b *testing.B) {
	stream := zipfStream()
	s := mergesum.NewHLL(12, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(stream[i%len(stream)])
	}
}

func BenchmarkHLLMerge(b *testing.B) {
	mk := func(seed uint64) *mergesum.HLL {
		s := mergesum.NewHLL(12, 1)
		for _, x := range gen.NewZipf(4096, 1.2, seed).Stream(benchStreamLen) {
			s.Update(x)
		}
		return s
	}
	a, c := mk(1), mk(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Merge(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopKUpdate(b *testing.B) {
	stream := zipfStream()
	s := mergesum.NewTopK(64, 512, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(stream[i%len(stream)], 1)
	}
}

// Sharded concurrent ingestion: how much does contention cost across
// worker counts? (Run with -cpu to sweep GOMAXPROCS.)
func BenchmarkShardedIngest(b *testing.B) {
	stream := zipfStream()
	sh := shard.New(16, func(int) *mergesum.MisraGries { return mergesum.NewMisraGries(256) })
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			x := stream[i%len(stream)]
			sh.Update(uint64(x), func(s *mergesum.MisraGries) { s.Update(x, 1) })
			i++
		}
	})
}

// Sharded batched ingestion: items are buffered per goroutine and
// pushed through Sharded.UpdateBatch, paying one lock acquisition per
// shard per batch instead of one per item. ns/op is per item, directly
// comparable to BenchmarkShardedIngest.
func BenchmarkShardedIngestBatch(b *testing.B) {
	for _, p := range []int{8, 16} {
		b.Run(fmt.Sprintf("shards=%d", p), func(b *testing.B) {
			stream := zipfStream()
			sh := shard.New(p, func(int) *mergesum.MisraGries { return mergesum.NewMisraGries(256) })
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				buf := make([]mergesum.Item, 0, benchBatchLen)
				scratch := make([]mergesum.Item, 0, benchBatchLen)
				i := 0
				flush := func() {
					if len(buf) == 0 {
						return
					}
					sh.UpdateBatch(len(buf),
						func(j int) uint64 { return uint64(buf[j]) },
						func(s *mergesum.MisraGries, idxs []int) {
							scratch = scratch[:0]
							for _, j := range idxs {
								scratch = append(scratch, buf[j])
							}
							s.UpdateBatch(scratch)
						})
					buf = buf[:0]
				}
				for pb.Next() {
					buf = append(buf, stream[i%len(stream)])
					i++
					if len(buf) == benchBatchLen {
						flush()
					}
				}
				flush()
			})
		})
	}
}

// Sharded distinct counting: HLL shards keyed by the raw item. The
// batch path's win is largest here because HLL.UpdateBatch hoists the
// seed and register slice out of the loop on top of the amortized
// locking.
func BenchmarkShardedHLLIngest(b *testing.B) {
	stream := zipfStream()
	sh := shard.New(8, func(int) *mergesum.HLL { return mergesum.NewHLL(12, 1) })
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			x := stream[i%len(stream)]
			sh.Update(uint64(x), func(s *mergesum.HLL) { s.Update(x) })
			i++
		}
	})
}

func BenchmarkShardedHLLIngestBatch(b *testing.B) {
	stream := zipfStream()
	sh := shard.New(8, func(int) *mergesum.HLL { return mergesum.NewHLL(12, 1) })
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		buf := make([]mergesum.Item, 0, benchBatchLen)
		scratch := make([]mergesum.Item, 0, benchBatchLen)
		i := 0
		flush := func() {
			if len(buf) == 0 {
				return
			}
			sh.UpdateBatch(len(buf),
				func(j int) uint64 { return uint64(buf[j]) },
				func(s *mergesum.HLL, idxs []int) {
					scratch = scratch[:0]
					for _, j := range idxs {
						scratch = append(scratch, buf[j])
					}
					s.UpdateBatch(scratch)
				})
			buf = buf[:0]
		}
		for pb.Next() {
			buf = append(buf, stream[i%len(stream)])
			i++
			if len(buf) == benchBatchLen {
				flush()
			}
		}
		flush()
	})
}

// Server round-trip: one PUSH of a k=256 MG summary into a live
// summaryd over loopback TCP, including encode, wire, decode and merge.
func BenchmarkServerPush(b *testing.B) {
	srv := server.New()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	defer func() {
		srv.Close()
		<-done
	}()
	c, err := server.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	s := buildMG(256, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Push("bench", "mg", s); err != nil {
			b.Fatal(err)
		}
	}
}

// Server batched round-trip: PUSHB pipelines 16 frames behind one
// command line and one reply. ns/op is per pushed summary, directly
// comparable to BenchmarkServerPush.
func BenchmarkServerPushBatch(b *testing.B) {
	srv := server.New()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	defer func() {
		srv.Close()
		<-done
	}()
	c, err := server.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	s := buildMG(256, 1)
	const per = 16
	batch := make([]encoding.BinaryMarshaler, per)
	for i := range batch {
		batch[i] = s
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += per {
		if _, err := c.PushBatch("bench", "mg", batch); err != nil {
			b.Fatal(err)
		}
	}
}
