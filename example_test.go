package mergesum_test

import (
	"fmt"

	mergesum "repro"
)

// Two sites summarize disjoint halves of a stream and merge — the
// fundamental operation of the library.
func ExampleMisraGries() {
	left, right := mergesum.NewMisraGries(4), mergesum.NewMisraGries(4)
	for i := 0; i < 60; i++ {
		left.Update(7, 1) // site A sees a hot item
	}
	for i := 0; i < 40; i++ {
		right.Update(mergesum.Item(i), 1) // site B sees noise
	}
	if err := left.Merge(right); err != nil {
		panic(err)
	}
	fmt.Println("n:", left.N())
	fmt.Println("item 7 lower bound:", left.Estimate(7).Lower)
	// Output:
	// n: 100
	// item 7 lower bound: 60
}

// The low-total-error merge reproduces the worked example of the
// follow-up text (§5.1): same inputs, strictly more accurate output
// than the PODS'12 prune.
func ExampleMisraGries_mergeLowError() {
	build := func(items []mergesum.Item, counts []uint64) *mergesum.MisraGries {
		s := mergesum.NewMisraGries(4)
		for i := range items {
			s.Update(items[i], counts[i])
		}
		return s
	}
	s1 := build([]mergesum.Item{2, 3, 4, 5}, []uint64{4, 11, 22, 33})
	s2 := build([]mergesum.Item{7, 8, 9, 10}, []uint64{10, 20, 30, 40})
	if err := s1.MergeLowError(s2); err != nil {
		panic(err)
	}
	for _, c := range s1.Counters() {
		fmt.Printf("item %d: %d\n", c.Item, c.Count)
	}
	// Output:
	// item 4: 2
	// item 9: 14
	// item 5: 23
	// item 10: 31
}

// Quantile summaries merge across shards and answer percentile queries
// over the union.
func ExampleQuantile() {
	shards := make([]*mergesum.Quantile, 4)
	for i := range shards {
		shards[i] = mergesum.NewQuantile(0.01, uint64(i)+1)
		for v := 0; v < 25000; v++ {
			shards[i].Update(float64(i*25000 + v))
		}
	}
	merged, err := mergesum.MergeBinary(shards, (*mergesum.Quantile).Merge)
	if err != nil {
		panic(err)
	}
	// The union is 0..99999; the median is within 1% of 50000.
	med := merged.Quantile(0.5)
	fmt.Println("median within 1%:", med > 49000 && med < 51000)
	fmt.Println("n:", merged.N())
	// Output:
	// median within 1%: true
	// n: 100000
}

// Distinct counting across sites that see overlapping users: adding
// per-site counts double-counts, merging KMV summaries does not.
func ExampleKMV() {
	a, b := mergesum.NewKMV(1024, 7), mergesum.NewKMV(1024, 7)
	for u := 0; u < 600; u++ {
		a.Update(mergesum.Item(u)) // users 0..599
	}
	for u := 300; u < 900; u++ {
		b.Update(mergesum.Item(u)) // users 300..899 (overlap 300..599)
	}
	if err := a.Merge(b); err != nil {
		panic(err)
	}
	fmt.Println("distinct:", a.Estimate()) // 900 distinct, fewer than k: exact
	// Output:
	// distinct: 900
}

// A sliding window of heavy hitters assembled by merging tumbling
// epochs.
func ExampleWindowed() {
	w := mergesum.NewWindowed(3, func(uint64) *mergesum.MisraGries {
		return mergesum.NewMisraGries(8)
	})
	for epoch := 0; epoch < 5; epoch++ {
		if epoch > 0 {
			w.Advance()
		}
		hot := mergesum.Item(epoch) // each epoch has its own hot item
		for i := 0; i < 100; i++ {
			w.Current().Update(hot, 1)
		}
	}
	q, err := w.Query(2,
		func(s *mergesum.MisraGries) *mergesum.MisraGries { return s.Clone() },
		(*mergesum.MisraGries).Merge)
	if err != nil {
		panic(err)
	}
	// Only epochs 4 and 3 are in the window.
	fmt.Println("window n:", q.N())
	fmt.Println("item 4:", q.Estimate(4).Value, "item 1:", q.Estimate(1).Value)
	// Output:
	// window n: 200
	// item 4: 100 item 1: 0
}

// SpaceSaving never loses a heavy hitter, and its low-total-error
// merge reproduces the follow-up text's §5.2 worked example.
func ExampleSpaceSaving_mergeLowError() {
	build := func(items []mergesum.Item, counts []uint64) *mergesum.SpaceSaving {
		s := mergesum.NewSpaceSaving(5)
		for i := range items {
			s.Update(items[i], counts[i])
		}
		return s
	}
	s1 := build([]mergesum.Item{1, 2, 3, 4, 5}, []uint64{5, 7, 12, 14, 18})
	s2 := build([]mergesum.Item{6, 7, 8, 9, 10}, []uint64{4, 16, 17, 19, 23})
	if err := s1.MergeLowError(s2); err != nil {
		panic(err)
	}
	for _, c := range s1.Counters() {
		fmt.Printf("item %d: %d\n", c.Item, c.Count)
	}
	// Output:
	// item 7: 12
	// item 5: 13
	// item 8: 15
	// item 9: 22
	// item 10: 28
}

// QDigest answers integer quantiles deterministically over a fixed
// universe and merges by adding node counts.
func ExampleQDigest() {
	a := mergesum.NewQDigest(10, 0.05) // universe [0, 1024)
	b := mergesum.NewQDigest(10, 0.05)
	for v := uint64(0); v < 512; v++ {
		a.Update(v, 1)
	}
	for v := uint64(512); v < 1024; v++ {
		b.Update(v, 1)
	}
	if err := a.Merge(b); err != nil {
		panic(err)
	}
	med := a.Quantile(0.5)
	fmt.Println("n:", a.N())
	fmt.Println("median within bound:", med >= 512-a.ErrorBound() && med <= 512+a.ErrorBound())
	// Output:
	// n: 1024
	// median within bound: true
}

// TopK gives a Count-Min sketch a mergeable heavy-hitter directory.
func ExampleTopK() {
	a := mergesum.NewTopK(3, 256, 4, 1)
	b := mergesum.NewTopK(3, 256, 4, 1)
	a.Update(100, 50)
	a.Update(200, 10)
	b.Update(100, 25)
	b.Update(300, 40)
	if err := a.Merge(b); err != nil {
		panic(err)
	}
	for _, c := range a.Top() {
		fmt.Printf("item %d: %d\n", c.Item, c.Count)
	}
	// Output:
	// item 100: 75
	// item 300: 40
	// item 200: 10
}
