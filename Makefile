# Standard verify entrypoint: `make check` runs vet, build, the
# project's own static analysis (sketchlint), the pinned third-party
# analyzers when present, the race-enabled test suite with and without
# the sanitize invariant layer, and a short benchmark smoke pass.

GO ?= go

# Third-party analyzers are pinned here for reproducibility but are
# NOT installed by this Makefile (CI images bake them in; dev machines
# may be offline). Targets run them when found on PATH and otherwise
# skip with a notice, so `make check` never fails for lack of a tool —
# only for what a tool found.
STATICCHECK_VERSION ?= 2025.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: check lint staticcheck govulncheck vet build test race sanitize bench-smoke bench-server bench-json bench-regress fuzz wire-snapshot wire-docs wire-golden clean

check: vet build lint staticcheck govulncheck race sanitize bench-smoke bench-server bench-regress

# Project-specific analyzers: the syntactic suite (mergecompat,
# locksafe, hotpathalloc, detrand, regcomplete), the flow-sensitive
# suite (poollife, encodepure, lockflow), and the wire-schema suite
# (wireshape symmetry proofs, wirecompat snapshot gate); any
# diagnostic fails the build. Linting runs with the sanitize tag so
# the invariant layer itself is analyzed. Each package is parsed and
# type-checked once for all ten passes (the loader caches by
# directory, the flow passes share one IR build per package), so the
# shared load dominates and analysis time is noise (`sketchlint
# -timing` itemizes it).
lint:
	$(GO) run ./cmd/sketchlint

# Regenerate the committed wire-schema snapshots under
# internal/analysis/wireshape/schemas/ from the current codecs. Run
# this deliberately after an intentional wire-format change; the
# wirecompat pass (part of `make lint`) fails on any breaking drift
# between the codecs and these files. Refuses while encode/decode
# symmetry errors are open.
wire-snapshot:
	$(GO) run ./cmd/sketchlint -wire-snapshot

# Re-render DESIGN.md's wire-format appendix from the committed
# schemas (between the wireshape markers).
wire-docs:
	$(GO) run ./cmd/sketchlint -wire-docs

# Regenerate the golden wire corpus under internal/codec/testdata/
# golden/: one committed frame per registered family. The corpus test
# fails on any byte-level drift until this is rerun deliberately.
wire-golden:
	$(GO) test ./internal/codec/ -run TestGoldenCorpus -update-golden

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not on PATH; skipping (pinned: $(STATICCHECK_VERSION))"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not on PATH; skipping (pinned: $(GOVULNCHECK_VERSION))"; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-enabled suite with the runtime invariant layer compiled in:
# every Update/Merge asserts the paper's structural invariants.
sanitize:
	$(GO) test -tags sanitize -race ./...

# Quick compile-and-run smoke over every Update/UpdateBatch benchmark;
# 100 iterations keeps it a few seconds, not a measurement.
bench-smoke:
	$(GO) test -run='^$$' -bench=Update -benchtime=100x .

# Compile-and-run smoke over the server merge-plane benchmarks (push,
# batched push, cached and re-encode pull); one iteration each keeps it
# a liveness check, not a measurement.
bench-server:
	$(GO) test -run='^$$' -bench=Server -benchtime=1x ./internal/server/

# Full measurement: regenerates results/bench.json (per-item vs batch
# ns/op for every family, windowed query latency ladder-vs-flat, server
# push/pull/merge throughput at 1-16 clients, and mergetree.Parallel
# worker scaling).
bench-json:
	$(GO) run ./cmd/bench -out results/bench.json

# Regression gate: measure the per-family ingest paths fresh and fail
# if any family's batch path regressed more than 10% (or started
# allocating) against the committed results/bench.json. Two runs,
# gated on the per-family minimum: noise on a shared builder only ever
# slows a run down, so the min estimates the true cost. The windowed
# query plane gates alongside: the ladder must stay >= 5x faster than
# the flat per-epoch plan at windows of 256+ epochs. Regenerate the
# baseline with `make bench-json` when the benchmark machine changes.
bench-regress:
	$(GO) run ./cmd/bench -families-only -out /tmp/bench-fresh-1.json
	$(GO) run ./cmd/bench -families-only -out /tmp/bench-fresh-2.json
	$(GO) run ./cmd/benchregress -baseline results/bench.json \
		-fresh /tmp/bench-fresh-1.json,/tmp/bench-fresh-2.json

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzUpdateBatch -fuzztime=30s ./internal/mg/

clean:
	$(GO) clean ./...
