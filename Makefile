# Standard verify entrypoint: `make check` runs vet, build, the full
# race-enabled test suite, and a short benchmark smoke pass over the
# per-item and batch ingestion paths.

GO ?= go

.PHONY: check vet build test race bench-smoke bench-json fuzz clean

check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick compile-and-run smoke over every Update/UpdateBatch benchmark;
# 100 iterations keeps it a few seconds, not a measurement.
bench-smoke:
	$(GO) test -run='^$$' -bench=Update -benchtime=100x .

# Full measurement: regenerates results/bench.json (per-item vs batch
# ns/op, allocs/op and speedups for every summary family).
bench-json:
	$(GO) run ./cmd/bench -out results/bench.json

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzUpdateBatch -fuzztime=30s ./internal/mg/

clean:
	$(GO) clean ./...
