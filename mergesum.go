// Package mergesum is the public API of this repository: a Go library
// of mergeable summaries reproducing Agarwal, Cormode, Huang, Phillips,
// Wei and Yi, "Mergeable Summaries" (PODS 2012), plus the
// low-total-error merge algorithms of the follow-up by Cafaro, Tempesta
// and Pulimeno.
//
// A summary S(D, ε) is *mergeable* when merging S(D1, ε) and S(D2, ε)
// yields S(D1 ⊎ D2, ε) — same size bound, same error parameter — for
// arbitrary merge trees. That property turns every summary below into a
// drop-in distributed aggregator: build one summary per shard, merge in
// any topology, query the root as if it had seen all the data.
//
// Summary families (each constructor returns a concrete type with
// Update / Estimate-or-Quantile / Merge / MarshalBinary):
//
//   - NewMisraGries, NewMisraGriesEpsilon — deterministic heavy
//     hitters, never overestimates, error ≤ εn under any merging.
//   - NewSpaceSaving, NewSpaceSavingEpsilon — deterministic heavy
//     hitters, never underestimates on streams, isomorphic to MG.
//     Both carry two merge algorithms: Merge (PODS'12) and
//     MergeLowError (the follow-up's closed-form, smaller total error).
//   - NewGK — deterministic quantiles, one-way mergeable.
//   - NewQuantile, NewQuantileHybrid — the paper's randomized fully
//     mergeable quantile summaries.
//   - NewCountMin, NewCountSketch — linear sketches (trivially
//     mergeable baselines).
//   - NewBottomK — mergeable uniform sample.
//   - NewRangeCounter — mergeable 2-D ε-approximation for rectangles.
//   - NewKernel — mergeable ε-kernel for directional width.
//
// Merge topology helpers (MergeSequential, MergeBinary, MergeParallel)
// fold a slice of summaries with any of the summaries' merge methods.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction results; `go run ./cmd/experiments` regenerates them.
package mergesum

import (
	"repro/internal/core"
	"repro/internal/countmin"
	"repro/internal/countsketch"
	"repro/internal/distinct"
	"repro/internal/epsapprox"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/gk"
	"repro/internal/kernel"
	"repro/internal/mergetree"
	"repro/internal/mg"
	"repro/internal/qdigest"
	"repro/internal/randquant"
	"repro/internal/sampling"
	"repro/internal/shard"
	"repro/internal/spacesaving"
	"repro/internal/topk"
	"repro/internal/window"
)

// Core vocabulary.
type (
	// Item identifies an element counted by the frequency summaries.
	Item = core.Item
	// Counter is an (item, count) pair.
	Counter = core.Counter
	// Estimate is a point-query answer with a guaranteed interval.
	Estimate = core.Estimate
	// Point is a planar point for the geometric summaries.
	Point = gen.Point
	// Rect is an axis-aligned rectangle query.
	Rect = exact.Rect
)

// Summary types.
type (
	// MisraGries is the Misra–Gries (Frequent) heavy-hitter summary.
	MisraGries = mg.Summary
	// SpaceSaving is the SpaceSaving heavy-hitter summary.
	SpaceSaving = spacesaving.Summary
	// GK is the Greenwald–Khanna quantile summary.
	GK = gk.Summary
	// Quantile is the randomized fully mergeable quantile summary.
	Quantile = randquant.Summary
	// QuantileHybrid is the sampling hybrid with size independent of n.
	QuantileHybrid = randquant.Hybrid
	// CountMin is the Count-Min sketch.
	CountMin = countmin.Sketch
	// CountSketch is the Count-Sketch.
	CountSketch = countsketch.Sketch
	// BottomK is the mergeable uniform sample.
	BottomK = sampling.BottomK
	// RangeCounter is the mergeable 2-D range-counting summary.
	RangeCounter = epsapprox.Summary
	// Kernel is the mergeable directional-width kernel.
	Kernel = kernel.Kernel
	// KMV is the k-minimum-values distinct-count summary.
	KMV = distinct.KMV
	// HLL is the HyperLogLog distinct-count summary.
	HLL = distinct.HLL
	// TopK is the Count-Min-backed top-k heavy-hitter tracker.
	TopK = topk.Tracker
	// QDigest is the fixed-universe deterministic mergeable quantile
	// summary (the paper's §3 comparison point).
	QDigest = qdigest.Digest
)

// Sharded fans concurrent updates over per-shard summaries; snapshots
// merge the shards, which is sound exactly because the summaries are
// mergeable.
type Sharded[S any] = shard.Sharded[S]

// NewSharded returns a Sharded with p shards built by mk.
func NewSharded[S any](p int, mk func(shard int) S) *Sharded[S] { return shard.New(p, mk) }

// Windowed turns any mergeable summary into a sliding-window summary
// over tumbling epochs; window queries merge the retained epochs.
type Windowed[S any] = window.Windowed[S]

// NewWindowed returns a Windowed retaining the most recent capacity
// epochs, built by mk.
func NewWindowed[S any](capacity int, mk func(epoch uint64) S) *Windowed[S] {
	return window.New(capacity, mk)
}

// Frequency-summary constructors.

// NewMisraGries returns an empty Misra–Gries summary with k counters
// (frequency error at most n/(k+1)).
func NewMisraGries(k int) *MisraGries { return mg.New(k) }

// NewMisraGriesEpsilon sizes a Misra–Gries summary for error eps*n.
func NewMisraGriesEpsilon(eps float64) *MisraGries { return mg.NewEpsilon(eps) }

// NewSpaceSaving returns an empty SpaceSaving summary with k counters
// (overestimation at most n/k).
func NewSpaceSaving(k int) *SpaceSaving { return spacesaving.New(k) }

// NewSpaceSavingEpsilon sizes a SpaceSaving summary for error eps*n.
func NewSpaceSavingEpsilon(eps float64) *SpaceSaving { return spacesaving.NewEpsilon(eps) }

// NewCountMin returns a Count-Min sketch with the given geometry; use
// the same seed on every site that will merge.
func NewCountMin(width, depth int, seed uint64) *CountMin { return countmin.New(width, depth, seed) }

// NewCountSketch returns a Count-Sketch with the given geometry.
func NewCountSketch(width, depth int, seed uint64) *CountSketch {
	return countsketch.New(width, depth, seed)
}

// Quantile-summary constructors.

// NewGK returns a Greenwald–Khanna summary with rank error eps*n.
func NewGK(eps float64) *GK { return gk.New(eps) }

// NewQuantile returns the randomized fully mergeable quantile summary
// sized for rank error eps*n (w.h.p.) under arbitrary merging.
func NewQuantile(eps float64, seed uint64) *Quantile { return randquant.NewEpsilon(eps, seed) }

// NewQuantileHybrid returns the hybrid variant whose size is
// independent of the stream length.
func NewQuantileHybrid(eps float64, seed uint64) *QuantileHybrid {
	return randquant.NewHybridEpsilon(eps, seed)
}

// NewBottomK returns a mergeable uniform sample of up to k values.
func NewBottomK(k int, seed uint64) *BottomK { return sampling.NewBottomK(k, seed) }

// NewQDigest returns a deterministic mergeable quantile summary over
// the integer universe [0, 2^logU) with rank error eps*n.
func NewQDigest(logU uint8, eps float64) *QDigest { return qdigest.NewEpsilon(logU, eps) }

// Geometric constructors.

// NewRangeCounter returns a mergeable 2-D range-counting summary with
// count error ~eps*n over the given bounding box.
func NewRangeCounter(eps float64, box Rect, seed uint64) *RangeCounter {
	return epsapprox.NewEpsilon(eps, box, seed)
}

// NewKernel returns a mergeable directional-width kernel with relative
// width error eps for inputs of bounded aspect ratio.
func NewKernel(eps float64) *Kernel { return kernel.NewEpsilon(eps) }

// Distinct-count constructors.

// NewKMV returns a k-minimum-values distinct counter (relative
// standard error ~1/sqrt(k-2)); use the same seed on every site.
func NewKMV(k int, seed uint64) *KMV { return distinct.NewKMV(k, seed) }

// NewHLL returns a HyperLogLog distinct counter with 2^p registers
// (relative standard error ~1.04/sqrt(2^p)); use the same seed on
// every site.
func NewHLL(p uint8, seed uint64) *HLL { return distinct.NewHLL(p, seed) }

// NewTopK returns a Count-Min-backed top-k tracker: a mergeable
// heavy-hitter directory over a sketch with the given geometry.
func NewTopK(k, width, depth int, seed uint64) *TopK { return topk.New(k, width, depth, seed) }

// Merge topology helpers (see the mergeability definition: the result
// is within guarantee for every one of these).

// MergeFunc folds src into dst, as every summary's Merge method does.
type MergeFunc[S any] = mergetree.MergeFunc[S]

// MergeSequential folds parts left-to-right (one-way/streaming order).
func MergeSequential[S any](parts []S, merge MergeFunc[S]) (S, error) {
	return mergetree.Sequential(parts, merge)
}

// MergeBinary folds parts as a balanced binary tree.
func MergeBinary[S any](parts []S, merge MergeFunc[S]) (S, error) {
	return mergetree.Binary(parts, merge)
}

// MergeParallel folds parts with the given number of concurrent
// workers.
func MergeParallel[S any](parts []S, workers int, merge MergeFunc[S]) (S, error) {
	return mergetree.Parallel(parts, workers, merge)
}

// Bounds re-exported from the analysis.

// MGBound returns the Misra–Gries error bound n/(k+1).
func MGBound(n uint64, k int) uint64 { return core.MGBound(n, k) }

// SSBound returns the SpaceSaving error bound n/k.
func SSBound(n uint64, k int) uint64 { return core.SSBound(n, k) }

// HeavyThreshold returns floor(n/k)+1, the k-majority threshold.
func HeavyThreshold(n uint64, k int) uint64 { return core.HeavyThreshold(n, k) }
