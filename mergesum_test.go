package mergesum_test

import (
	"testing"

	mergesum "repro"
	"repro/internal/exact"
	"repro/internal/gen"
)

// The facade must expose a complete, coherent workflow for every
// summary family; this test is effectively the README's quickstart.
func TestFacadeFrequencyWorkflow(t *testing.T) {
	const n = 50000
	stream := gen.NewZipf(2000, 1.3, 1).Stream(n)
	truth := exact.FreqOf(stream)
	parts := gen.PartitionContiguous(stream, 8)

	mgs := make([]*mergesum.MisraGries, len(parts))
	sss := make([]*mergesum.SpaceSaving, len(parts))
	for i, p := range parts {
		mgs[i] = mergesum.NewMisraGriesEpsilon(0.005)
		sss[i] = mergesum.NewSpaceSavingEpsilon(0.005)
		for _, x := range p {
			mgs[i].Update(x, 1)
			sss[i].Update(x, 1)
		}
	}
	mgMerged, err := mergesum.MergeBinary(mgs, (*mergesum.MisraGries).Merge)
	if err != nil {
		t.Fatal(err)
	}
	ssMerged, err := mergesum.MergeParallel(sss, 4, (*mergesum.SpaceSaving).MergeLowError)
	if err != nil {
		t.Fatal(err)
	}
	if mgMerged.N() != n || ssMerged.N() != n {
		t.Fatalf("N: mg=%d ss=%d", mgMerged.N(), ssMerged.N())
	}
	top := truth.Counters()[0]
	if e := mgMerged.Estimate(top.Item); !e.Contains(top.Count) {
		t.Errorf("mg interval %v misses %d", e, top.Count)
	}
	if e := ssMerged.Estimate(top.Item); !e.Contains(top.Count) {
		t.Errorf("ss interval %v misses %d", e, top.Count)
	}
}

func TestFacadeQuantileWorkflow(t *testing.T) {
	const n = 40000
	vals := gen.NormalValues(n, 2)
	oracle := exact.QuantilesOf(vals)
	parts := gen.PartitionRandomSizes(vals, 6, 3)

	qs := make([]*mergesum.Quantile, len(parts))
	for i, p := range parts {
		qs[i] = mergesum.NewQuantile(0.02, uint64(i)+1)
		for _, v := range p {
			qs[i].Update(v)
		}
	}
	merged, err := mergesum.MergeSequential(qs, (*mergesum.Quantile).Merge)
	if err != nil {
		t.Fatal(err)
	}
	med := merged.Quantile(0.5)
	rank := oracle.Rank(med)
	if rank < n/2-n/25 || rank > n/2+n/25 {
		t.Errorf("median rank %d too far from %d", rank, n/2)
	}

	gkS := mergesum.NewGK(0.01)
	hyb := mergesum.NewQuantileHybrid(0.02, 9)
	bk := mergesum.NewBottomK(2048, 10)
	for _, v := range vals {
		gkS.Update(v)
		hyb.Update(v)
		bk.Update(v)
	}
	for name, q := range map[string]float64{
		"gk":      gkS.Quantile(0.5),
		"hybrid":  hyb.Quantile(0.5),
		"bottomk": bk.Quantile(0.5),
	} {
		r := oracle.Rank(q)
		if r < n/2-n/10 || r > n/2+n/10 {
			t.Errorf("%s median rank %d too far from %d", name, r, n/2)
		}
	}
}

func TestFacadeSketchesAndGeometry(t *testing.T) {
	cm := mergesum.NewCountMin(256, 4, 7)
	cs := mergesum.NewCountSketch(256, 4, 7)
	for i := 0; i < 1000; i++ {
		cm.Update(42, 1)
		cs.Update(42, 1)
	}
	if cm.Estimate(42).Value < 1000 {
		t.Error("countmin underestimated")
	}
	if v := cs.Estimate(42).Value; v < 900 || v > 1100 {
		t.Errorf("countsketch estimate %d far from 1000", v)
	}

	box := mergesum.Rect{X0: 0, Y0: 0, X1: 1, Y1: 1}
	rc := mergesum.NewRangeCounter(0.05, box, 3)
	pts := gen.UniformPoints(5000, 4)
	for _, p := range pts {
		rc.Update(p)
	}
	q := mergesum.Rect{X0: 0, Y0: 0, X1: 0.5, Y1: 0.5}
	got, want := rc.RangeCount(q), exact.RangeCount(pts, q)
	diff := int64(got) - int64(want)
	if diff < 0 {
		diff = -diff
	}
	if diff > 5000/20 {
		t.Errorf("range count %d too far from %d", got, want)
	}

	kn := mergesum.NewKernel(0.1)
	for _, p := range gen.RingPoints(2000, 1, 0.01, 5) {
		kn.Update(p)
	}
	if w := kn.Width(0.3); w < 1.5 || w > 2.5 {
		t.Errorf("ring width %v far from 2", w)
	}
}

func TestFacadeBounds(t *testing.T) {
	if mergesum.MGBound(100, 9) != 10 {
		t.Error("MGBound")
	}
	if mergesum.SSBound(100, 10) != 10 {
		t.Error("SSBound")
	}
	if mergesum.HeavyThreshold(100, 5) != 21 {
		t.Error("HeavyThreshold")
	}
}

// Summaries round-trip through the facade-visible codec interface.
func TestFacadeCodecs(t *testing.T) {
	s := mergesum.NewMisraGries(16)
	for _, x := range gen.NewZipf(100, 1.2, 1).Stream(5000) {
		s.Update(x, 1)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got mergesum.MisraGries
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.N() != s.N() {
		t.Error("round trip lost N")
	}
}
