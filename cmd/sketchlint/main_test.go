package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func opts(jsonOut bool, failOn string) options {
	return options{tags: []string{"sanitize"}, jsonOut: jsonOut, failOn: failOn}
}

// TestModuleIsClean runs the full analyzer suite — syntactic,
// flow-sensitive and wire-schema — over the real module, exactly as
// `make lint` does. Any new violation of the pooled-lifetime,
// encode-purity, lock-discipline or wire-symmetry contracts fails
// `go test ./...`, not just CI's lint step.
func TestModuleIsClean(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, nil, opts(false, "warning")); err != nil {
		t.Fatalf("sketchlint over the module reported diagnostics:\n%s", out.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run produced output:\n%s", out.String())
	}
}

// TestJSONOutput checks the -json wire shape over a fixture package
// with known findings.
func TestJSONOutput(t *testing.T) {
	var out bytes.Buffer
	dir := "../../internal/analysis/testdata/src/lockflow_a"
	err := run(&out, []string{dir}, opts(true, "none"))
	if err != nil {
		t.Fatalf("run with -fail-on none must not fail: %v", err)
	}
	var sawError, sawWarning bool
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 4 {
		t.Fatalf("expected several JSON diagnostics, got %d:\n%s", len(lines), out.String())
	}
	for _, line := range lines {
		var d jsonDiag
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("non-JSON line %q: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		switch d.Severity {
		case "error":
			sawError = true
		case "warning":
			sawWarning = true
		default:
			t.Errorf("unknown severity %q", d.Severity)
		}
	}
	if !sawError || !sawWarning {
		t.Errorf("expected both severities in fixture findings (error=%v warning=%v)", sawError, sawWarning)
	}
}

// TestJSONShapePinned pins the exact -json key set: every diagnostic
// object carries file/line/col/analyzer/severity/message and nothing
// else, so CI consumers can rely on the shape.
func TestJSONShapePinned(t *testing.T) {
	var out bytes.Buffer
	dir := "../../internal/analysis/testdata/src/lockflow_a"
	if err := run(&out, []string{dir}, opts(true, "none")); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := map[string]bool{"file": true, "line": true, "col": true, "analyzer": true, "severity": true, "message": true}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var raw map[string]any
		if err := json.Unmarshal([]byte(line), &raw); err != nil {
			t.Fatalf("non-JSON line %q: %v", line, err)
		}
		if len(raw) != len(want) {
			t.Fatalf("diagnostic has %d keys, want %d: %q", len(raw), len(want), line)
		}
		for k := range want {
			if _, ok := raw[k]; !ok {
				t.Fatalf("diagnostic missing key %q: %q", k, line)
			}
		}
		for _, k := range []string{"analyzer", "severity"} {
			if s, _ := raw[k].(string); s == "" {
				t.Fatalf("diagnostic has empty %q: %q", k, line)
			}
		}
	}
}

// TestFailOnSeverity checks the -fail-on threshold: a fixture whose
// only findings include warnings fails at the default threshold but
// the warnings alone do not fail at -fail-on error.
func TestFailOnSeverity(t *testing.T) {
	dir := "../../internal/analysis/testdata/src/lockflow_a"

	if err := run(&bytes.Buffer{}, []string{dir}, opts(false, "warning")); err != errDiagnostics {
		t.Fatalf("default threshold over violation fixture: got %v, want errDiagnostics", err)
	}
	// The fixture has error-severity findings too, so "error" still
	// fails; only "none" admits everything.
	if err := run(&bytes.Buffer{}, []string{dir}, opts(false, "error")); err != errDiagnostics {
		t.Fatalf("-fail-on error over fixture with errors: got %v, want errDiagnostics", err)
	}
	if err := run(&bytes.Buffer{}, []string{dir}, opts(false, "none")); err != nil {
		t.Fatalf("-fail-on none: got %v, want nil", err)
	}
	if err := run(&bytes.Buffer{}, nil, opts(false, "bogus")); err == nil {
		t.Fatal("invalid -fail-on value must error")
	}
}

// TestAnalyzerSelection exercises -only and -skip: selecting only
// lockflow still reports its findings, skipping it silences them, and
// unknown names are errors.
func TestAnalyzerSelection(t *testing.T) {
	dir := "../../internal/analysis/testdata/src/lockflow_a"

	var out bytes.Buffer
	o := opts(false, "none")
	o.only = "lockflow"
	if err := run(&out, []string{dir}, o); err != nil {
		t.Fatalf("-only lockflow: %v", err)
	}
	if !strings.Contains(out.String(), "lockflow:") {
		t.Fatalf("-only lockflow produced no lockflow findings:\n%s", out.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if !strings.Contains(line, "lockflow:") {
			t.Fatalf("-only lockflow leaked another analyzer's finding: %q", line)
		}
	}

	out.Reset()
	o = opts(false, "none")
	o.skip = "lockflow,wirecompat"
	if err := run(&out, []string{dir}, o); err != nil {
		t.Fatalf("-skip: %v", err)
	}
	if strings.Contains(out.String(), "lockflow:") {
		t.Fatalf("-skip lockflow still reported lockflow findings:\n%s", out.String())
	}

	o = opts(false, "none")
	o.only = "nosuchanalyzer"
	if err := run(&bytes.Buffer{}, []string{dir}, o); err == nil {
		t.Fatal("-only with unknown analyzer must error")
	}
	o = opts(false, "none")
	o.skip = strings.Join(analyzerNames(), ",")
	if err := run(&bytes.Buffer{}, []string{dir}, o); err == nil {
		t.Fatal("skipping every analyzer must error")
	}
}

func analyzerNames() []string {
	var names []string
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	return names
}

// TestTiming checks -timing emits one wall-time line per selected
// analyzer plus the load line.
func TestTiming(t *testing.T) {
	var out bytes.Buffer
	dir := "../../internal/analysis/testdata/src/lockflow_a"
	o := opts(false, "none")
	o.only = "lockflow,poollife"
	o.timing = true
	if err := run(&out, []string{dir}, o); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"timing: load+typecheck ", "timing: lockflow ", "timing: poollife "} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in -timing output:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "timing: detrand") {
		t.Fatalf("-timing reported an unselected analyzer:\n%s", out.String())
	}
}
