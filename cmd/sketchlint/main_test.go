package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestModuleIsClean runs the full analyzer suite — syntactic and
// flow-sensitive — over the real module, exactly as `make lint` does.
// Any new violation of the pooled-lifetime, encode-purity or lock
// discipline contracts fails `go test ./...`, not just CI's lint
// step.
func TestModuleIsClean(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, nil, []string{"sanitize"}, false, "warning"); err != nil {
		t.Fatalf("sketchlint over the module reported diagnostics:\n%s", out.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run produced output:\n%s", out.String())
	}
}

// TestJSONOutput checks the -json wire shape over a fixture package
// with known findings.
func TestJSONOutput(t *testing.T) {
	var out bytes.Buffer
	dir := "../../internal/analysis/testdata/src/lockflow_a"
	err := run(&out, []string{dir}, []string{"sanitize"}, true, "none")
	if err != nil {
		t.Fatalf("run with -fail-on none must not fail: %v", err)
	}
	var sawError, sawWarning bool
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 4 {
		t.Fatalf("expected several JSON diagnostics, got %d:\n%s", len(lines), out.String())
	}
	for _, line := range lines {
		var d jsonDiag
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("non-JSON line %q: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		switch d.Severity {
		case "error":
			sawError = true
		case "warning":
			sawWarning = true
		default:
			t.Errorf("unknown severity %q", d.Severity)
		}
	}
	if !sawError || !sawWarning {
		t.Errorf("expected both severities in fixture findings (error=%v warning=%v)", sawError, sawWarning)
	}
}

// TestFailOnSeverity checks the -fail-on threshold: a fixture whose
// only findings include warnings fails at the default threshold but
// the warnings alone do not fail at -fail-on error.
func TestFailOnSeverity(t *testing.T) {
	dir := "../../internal/analysis/testdata/src/lockflow_a"

	if err := run(&bytes.Buffer{}, []string{dir}, []string{"sanitize"}, false, "warning"); err != errDiagnostics {
		t.Fatalf("default threshold over violation fixture: got %v, want errDiagnostics", err)
	}
	// The fixture has error-severity findings too, so "error" still
	// fails; only "none" admits everything.
	if err := run(&bytes.Buffer{}, []string{dir}, []string{"sanitize"}, false, "error"); err != errDiagnostics {
		t.Fatalf("-fail-on error over fixture with errors: got %v, want errDiagnostics", err)
	}
	if err := run(&bytes.Buffer{}, []string{dir}, []string{"sanitize"}, false, "none"); err != nil {
		t.Fatalf("-fail-on none: got %v, want nil", err)
	}
	if err := run(&bytes.Buffer{}, nil, []string{"sanitize"}, false, "bogus"); err == nil {
		t.Fatal("invalid -fail-on value must error")
	}
}
