// Command sketchlint is the repository's static-analysis multichecker:
// it runs the custom sketch-correctness analyzers (mergecompat,
// locksafe, hotpathalloc, detrand, regcomplete) over every package of the module
// and exits nonzero on any diagnostic. It is the fast inner loop of
// `make lint` and part of `make check`.
//
// Usage:
//
//	sketchlint [-tags sanitize] [dir ...]
//
// With no arguments the whole module is checked (the "./..." of the
// suite); testdata and result trees are skipped. Packages are loaded
// with the sanitize build tag by default so the invariant layer is
// linted, not its no-op stubs.
//
// Exit codes: 0 clean, 1 diagnostics found, 2 load or internal error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/locksafe"
	"repro/internal/analysis/mergecompat"
	"repro/internal/analysis/regcomplete"
)

var analyzers = []*analysis.Analyzer{
	mergecompat.Analyzer,
	locksafe.Analyzer,
	hotpathalloc.Analyzer,
	detrand.Analyzer,
	regcomplete.Analyzer,
}

func main() {
	tags := flag.String("tags", "sanitize", "comma-separated build tags to lint under")
	list := flag.Bool("help-analyzers", false, "print the analyzer docs and exit")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}
	if err := run(flag.Args(), strings.Split(*tags, ",")); err != nil {
		if err == errDiagnostics {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "sketchlint:", err)
		os.Exit(2)
	}
}

var errDiagnostics = fmt.Errorf("diagnostics reported")

func run(args, tags []string) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	loader, err := analysis.NewLoader(cwd, tags...)
	if err != nil {
		return err
	}

	dirs := args
	if len(dirs) == 0 {
		if dirs, err = loader.ModulePackageDirs(); err != nil {
			return err
		}
	}
	sort.Strings(dirs)

	found := false
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			return err
		}
		for _, terr := range pkg.TypeErrors {
			return fmt.Errorf("%s does not type-check: %v", pkg.Path, terr)
		}
		for _, a := range analyzers {
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				return err
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				rel, rerr := filepath.Rel(loader.ModuleRoot(), pos.Filename)
				if rerr != nil {
					rel = pos.Filename
				}
				fmt.Printf("%s:%d:%d: %s: %s\n", rel, pos.Line, pos.Column, d.Analyzer, d.Message)
				found = true
			}
		}
	}
	if found {
		return errDiagnostics
	}
	return nil
}
