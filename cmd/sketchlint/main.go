// Command sketchlint is the repository's static-analysis multichecker:
// it runs the custom sketch-correctness analyzers — the syntactic
// suite (mergecompat, locksafe, hotpathalloc, detrand, regcomplete),
// the flow-sensitive suite (poollife, encodepure, lockflow) and the
// wire-schema suite (wireshape, wirecompat) — over every package of
// the module and exits nonzero on failing diagnostics. It is the fast
// inner loop of `make lint` and part of `make check`.
//
// Usage:
//
//	sketchlint [-tags sanitize] [-json] [-fail-on error|warning|none]
//	           [-only a,b] [-skip a,b] [-timing] [dir ...]
//	sketchlint -wire-snapshot | -wire-docs
//
// With no arguments the whole module is checked (the "./..." of the
// suite); testdata and result trees are skipped. Packages are loaded
// with the sanitize build tag by default so the invariant layer is
// linted, not its no-op stubs. Each package is parsed and
// type-checked once (the loader caches by directory) and every
// analyzer runs over that one load; the flow analyzers additionally
// share one flow-IR build per package, and wireshape/wirecompat share
// one schema extraction.
//
// -json emits one JSON object per line ({"file","line","col",
// "analyzer","severity","message"}) for CI consumers; -fail-on sets
// the severity that makes the exit code nonzero (default "warning":
// any diagnostic fails, preserving the historical behavior; "error"
// admits warnings; "none" always exits 0 but still prints). -only and
// -skip select analyzers by name; -timing appends per-analyzer
// wall-time totals to the output.
//
// -wire-snapshot regenerates the committed wire-schema snapshots
// under internal/analysis/wireshape/schemas (refusing while any
// encode/decode symmetry error is open); -wire-docs re-renders the
// DESIGN.md wire-format appendix from those snapshots. Both are
// normally invoked through `make wire-snapshot` / `make wire-docs`.
//
// Exit codes: 0 clean, 1 diagnostics at or above -fail-on, 2 load or
// internal error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/encodepure"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/lockflow"
	"repro/internal/analysis/locksafe"
	"repro/internal/analysis/mergecompat"
	"repro/internal/analysis/poollife"
	"repro/internal/analysis/regcomplete"
	"repro/internal/analysis/wireshape"
)

var analyzers = []*analysis.Analyzer{
	mergecompat.Analyzer,
	locksafe.Analyzer,
	hotpathalloc.Analyzer,
	detrand.Analyzer,
	regcomplete.Analyzer,
	poollife.Analyzer,
	encodepure.Analyzer,
	lockflow.Analyzer,
	wireshape.Analyzer,
	wireshape.CompatAnalyzer,
}

func main() {
	tags := flag.String("tags", "sanitize", "comma-separated build tags to lint under")
	list := flag.Bool("help-analyzers", false, "print the analyzer docs and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON, one object per line")
	failOn := flag.String("fail-on", "warning", "lowest severity that fails the run: error, warning or none")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	skip := flag.String("skip", "", "comma-separated analyzer names to skip")
	timing := flag.Bool("timing", false, "report per-analyzer wall time")
	wireSnapshot := flag.Bool("wire-snapshot", false, "regenerate the committed wire-schema snapshots and exit")
	wireDocs := flag.Bool("wire-docs", false, "re-render the DESIGN.md wire-format appendix from the committed schemas and exit")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}
	var err error
	switch {
	case *wireSnapshot:
		err = snapshotMain(os.Stdout, strings.Split(*tags, ","))
	case *wireDocs:
		err = docsMain(os.Stdout)
	default:
		err = run(os.Stdout, flag.Args(), options{
			tags:    strings.Split(*tags, ","),
			jsonOut: *jsonOut,
			failOn:  *failOn,
			only:    *only,
			skip:    *skip,
			timing:  *timing,
		})
	}
	if err != nil {
		if err == errDiagnostics {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "sketchlint:", err)
		os.Exit(2)
	}
}

var errDiagnostics = fmt.Errorf("diagnostics reported")

// options are the run-mode knobs of the multichecker.
type options struct {
	tags    []string
	jsonOut bool
	failOn  string
	only    string
	skip    string
	timing  bool
}

// jsonDiag is the -json wire shape of one diagnostic. Every field is
// always populated: analyzer and severity are set by the framework on
// every Diagnostic, and the test suite pins this shape.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

// selectAnalyzers applies -only/-skip to the analyzer list.
func selectAnalyzers(only, skip string) ([]*analysis.Analyzer, error) {
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	names := func(csv string) ([]string, error) {
		if csv == "" {
			return nil, nil
		}
		var out []string
		for _, n := range strings.Split(csv, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if byName[n] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (see -help-analyzers)", n)
			}
			out = append(out, n)
		}
		return out, nil
	}
	onlyNames, err := names(only)
	if err != nil {
		return nil, err
	}
	skipNames, err := names(skip)
	if err != nil {
		return nil, err
	}
	skipped := map[string]bool{}
	for _, n := range skipNames {
		skipped[n] = true
	}
	selected := analyzers
	if len(onlyNames) > 0 {
		selected = nil
		for _, a := range analyzers { // preserve registration order
			for _, n := range onlyNames {
				if a.Name == n {
					selected = append(selected, a)
					break
				}
			}
		}
	}
	var out []*analysis.Analyzer
	for _, a := range selected {
		if !skipped[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analyzer selection left nothing to run")
	}
	return out, nil
}

func run(w io.Writer, args []string, opts options) error {
	var failAt analysis.Severity
	switch opts.failOn {
	case "error":
		failAt = analysis.SeverityError
	case "warning":
		failAt = analysis.SeverityWarning
	case "none":
		failAt = analysis.Severity(-1)
	default:
		return fmt.Errorf("invalid -fail-on %q (want error, warning or none)", opts.failOn)
	}
	active, err := selectAnalyzers(opts.only, opts.skip)
	if err != nil {
		return err
	}

	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	loader, err := analysis.NewLoader(cwd, opts.tags...)
	if err != nil {
		return err
	}
	wireshape.SchemaDir = filepath.Join(loader.ModuleRoot(), "internal", "analysis", "wireshape", "schemas")

	wholeModule := len(args) == 0
	dirs := args
	if wholeModule {
		if dirs, err = loader.ModulePackageDirs(); err != nil {
			return err
		}
	}
	sort.Strings(dirs)

	enc := json.NewEncoder(w)
	failing := false
	timings := map[string]time.Duration{}
	emit := func(file string, line, col int, d analysis.Diagnostic) error {
		if opts.jsonOut {
			return enc.Encode(jsonDiag{
				File:     file,
				Line:     line,
				Col:      col,
				Analyzer: d.Analyzer,
				Severity: d.Severity.String(),
				Message:  d.Message,
			})
		}
		_, err := fmt.Fprintf(w, "%s:%d:%d: %s: %s: %s\n", file, line, col, d.Severity, d.Analyzer, d.Message)
		return err
	}

	runCompat := false
	var loadTime time.Duration
	for _, dir := range dirs {
		t0 := time.Now()
		pkg, err := loader.Load(dir)
		loadTime += time.Since(t0)
		if err != nil {
			return err
		}
		for _, terr := range pkg.TypeErrors {
			return fmt.Errorf("%s does not type-check: %v", pkg.Path, terr)
		}
		for _, a := range active {
			t0 := time.Now()
			diags, err := analysis.Run(a, pkg)
			timings[a.Name] += time.Since(t0)
			if err != nil {
				return err
			}
			if a.Name == wireshape.CompatAnalyzer.Name {
				runCompat = true
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				rel, rerr := filepath.Rel(loader.ModuleRoot(), pos.Filename)
				if rerr != nil {
					rel = pos.Filename
				}
				if err := emit(rel, pos.Line, pos.Column, d); err != nil {
					return err
				}
				// Severities order error(0) < warning(1); a diagnostic
				// fails the run when it is at least as severe as the
				// threshold.
				if failAt >= 0 && d.Severity <= failAt {
					failing = true
				}
			}
		}
	}

	// Committed schemas whose kind no longer exists anywhere in the
	// module are only visible across packages, so the driver checks
	// them after a whole-module wirecompat run.
	if wholeModule && runCompat {
		orphans, err := orphanSchemas(loader, dirs)
		if err != nil {
			return err
		}
		for _, o := range orphans {
			d := analysis.Diagnostic{Analyzer: wireshape.CompatAnalyzer.Name, Message: o.msg}
			if err := emit(o.file, 1, 1, d); err != nil {
				return err
			}
			if failAt >= analysis.SeverityError {
				failing = true
			}
		}
	}

	if opts.timing {
		names := make([]string, 0, len(timings))
		for n := range timings {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return timings[names[i]] > timings[names[j]] })
		fmt.Fprintf(w, "timing: load+typecheck %s\n", loadTime.Round(time.Millisecond))
		for _, n := range names {
			fmt.Fprintf(w, "timing: %s %s\n", n, timings[n].Round(time.Millisecond))
		}
	}
	if failing {
		return errDiagnostics
	}
	return nil
}

type orphan struct {
	file string
	msg  string
}

// orphanSchemas lists committed .schema files whose kind no codec in
// the module encodes anymore.
func orphanSchemas(loader *analysis.Loader, dirs []string) ([]orphan, error) {
	entries, err := os.ReadDir(wireshape.SchemaDir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	live := map[string]bool{}
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			return nil, err
		}
		for _, s := range wireshape.ExtractPackage(pkg).Schemas {
			live[s.Name] = true
		}
	}
	var out []orphan
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".schema")
		if !ok || live[name] {
			continue
		}
		rel, rerr := filepath.Rel(loader.ModuleRoot(), filepath.Join(wireshape.SchemaDir, e.Name()))
		if rerr != nil {
			rel = e.Name()
		}
		out = append(out, orphan{file: rel, msg: fmt.Sprintf(
			"committed schema %s matches no codec in the module — remove it via `make wire-snapshot` if the kind was retired", e.Name())})
	}
	return out, nil
}

// loadModule loads every package of the module, failing on type
// errors, and returns the loader plus packages (shared by the
// wire-snapshot and wire-docs modes).
func loadModule(tags []string) (*analysis.Loader, []*analysis.Package, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, nil, err
	}
	loader, err := analysis.NewLoader(cwd, tags...)
	if err != nil {
		return nil, nil, err
	}
	dirs, err := loader.ModulePackageDirs()
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(dirs)
	var pkgs []*analysis.Package
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			return nil, nil, err
		}
		for _, terr := range pkg.TypeErrors {
			return nil, nil, fmt.Errorf("%s does not type-check: %v", pkg.Path, terr)
		}
		pkgs = append(pkgs, pkg)
	}
	return loader, pkgs, nil
}

// snapshotMain implements -wire-snapshot: extract every codec schema
// in the module and rewrite the committed snapshots, refusing while
// symmetry errors are open.
func snapshotMain(w io.Writer, tags []string) error {
	loader, pkgs, err := loadModule(tags)
	if err != nil {
		return err
	}
	var results []*wireshape.Result
	broken := false
	for _, pkg := range pkgs {
		res := wireshape.ExtractPackage(pkg)
		results = append(results, res)
		for _, a := range res.Asyms {
			pos := pkg.Fset.Position(a.Pos)
			rel, rerr := filepath.Rel(loader.ModuleRoot(), pos.Filename)
			if rerr != nil {
				rel = pos.Filename
			}
			fmt.Fprintf(w, "%s:%d:%d: wireshape: %s\n", rel, pos.Line, pos.Column, a.Msg)
			broken = true
		}
	}
	if broken {
		return fmt.Errorf("refusing to snapshot with open symmetry errors (above)")
	}
	dir := filepath.Join(loader.ModuleRoot(), "internal", "analysis", "wireshape", "schemas")
	changed, err := wireshape.WriteSnapshots(dir, results)
	if err != nil {
		return err
	}
	if len(changed) == 0 {
		fmt.Fprintln(w, "wire-snapshot: schemas up to date")
		return nil
	}
	for _, f := range changed {
		fmt.Fprintln(w, "wire-snapshot:", f)
	}
	return nil
}

// DESIGN.md markers the rendered appendix is spliced between.
const (
	docsBegin = "<!-- wireshape:begin — generated by `make wire-docs`; do not edit by hand -->"
	docsEnd   = "<!-- wireshape:end -->"
)

// docsMain implements -wire-docs: re-render the DESIGN.md wire-format
// appendix from the committed schemas.
func docsMain(w io.Writer) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		return err
	}
	dir := filepath.Join(loader.ModuleRoot(), "internal", "analysis", "wireshape", "schemas")
	rendered, err := wireshape.RenderDocs(dir)
	if err != nil {
		return err
	}
	designPath := filepath.Join(loader.ModuleRoot(), "DESIGN.md")
	design, err := os.ReadFile(designPath)
	if err != nil {
		return err
	}
	text := string(design)
	begin := strings.Index(text, docsBegin)
	end := strings.Index(text, docsEnd)
	if begin < 0 || end < 0 || end < begin {
		return fmt.Errorf("DESIGN.md is missing the %q / %q markers", docsBegin, docsEnd)
	}
	updated := text[:begin+len(docsBegin)] + "\n\n" + rendered + "\n" + text[end:]
	if updated == text {
		fmt.Fprintln(w, "wire-docs: DESIGN.md up to date")
		return nil
	}
	if err := os.WriteFile(designPath, []byte(updated), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "wire-docs: DESIGN.md appendix updated")
	return nil
}
