// Command sketchlint is the repository's static-analysis multichecker:
// it runs the custom sketch-correctness analyzers — the syntactic
// suite (mergecompat, locksafe, hotpathalloc, detrand, regcomplete)
// and the flow-sensitive suite (poollife, encodepure, lockflow) —
// over every package of the module and exits nonzero on failing
// diagnostics. It is the fast inner loop of `make lint` and part of
// `make check`.
//
// Usage:
//
//	sketchlint [-tags sanitize] [-json] [-fail-on error|warning|none] [dir ...]
//
// With no arguments the whole module is checked (the "./..." of the
// suite); testdata and result trees are skipped. Packages are loaded
// with the sanitize build tag by default so the invariant layer is
// linted, not its no-op stubs. Each package is parsed and
// type-checked once (the loader caches by directory) and every
// analyzer runs over that one load; the flow analyzers additionally
// share one flow-IR build per package.
//
// -json emits one JSON object per line ({"file","line","col",
// "analyzer","severity","message"}) for CI consumers; -fail-on sets
// the severity that makes the exit code nonzero (default "warning":
// any diagnostic fails, preserving the historical behavior; "error"
// admits warnings; "none" always exits 0 but still prints).
//
// Exit codes: 0 clean, 1 diagnostics at or above -fail-on, 2 load or
// internal error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/encodepure"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/lockflow"
	"repro/internal/analysis/locksafe"
	"repro/internal/analysis/mergecompat"
	"repro/internal/analysis/poollife"
	"repro/internal/analysis/regcomplete"
)

var analyzers = []*analysis.Analyzer{
	mergecompat.Analyzer,
	locksafe.Analyzer,
	hotpathalloc.Analyzer,
	detrand.Analyzer,
	regcomplete.Analyzer,
	poollife.Analyzer,
	encodepure.Analyzer,
	lockflow.Analyzer,
}

func main() {
	tags := flag.String("tags", "sanitize", "comma-separated build tags to lint under")
	list := flag.Bool("help-analyzers", false, "print the analyzer docs and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON, one object per line")
	failOn := flag.String("fail-on", "warning", "lowest severity that fails the run: error, warning or none")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}
	err := run(os.Stdout, flag.Args(), strings.Split(*tags, ","), *jsonOut, *failOn)
	if err != nil {
		if err == errDiagnostics {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "sketchlint:", err)
		os.Exit(2)
	}
}

var errDiagnostics = fmt.Errorf("diagnostics reported")

// jsonDiag is the -json wire shape of one diagnostic.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

func run(w io.Writer, args, tags []string, jsonOut bool, failOn string) error {
	var failAt analysis.Severity
	switch failOn {
	case "error":
		failAt = analysis.SeverityError
	case "warning":
		failAt = analysis.SeverityWarning
	case "none":
		failAt = analysis.Severity(-1)
	default:
		return fmt.Errorf("invalid -fail-on %q (want error, warning or none)", failOn)
	}

	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	loader, err := analysis.NewLoader(cwd, tags...)
	if err != nil {
		return err
	}

	dirs := args
	if len(dirs) == 0 {
		if dirs, err = loader.ModulePackageDirs(); err != nil {
			return err
		}
	}
	sort.Strings(dirs)

	enc := json.NewEncoder(w)
	failing := false
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			return err
		}
		for _, terr := range pkg.TypeErrors {
			return fmt.Errorf("%s does not type-check: %v", pkg.Path, terr)
		}
		for _, a := range analyzers {
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				return err
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				rel, rerr := filepath.Rel(loader.ModuleRoot(), pos.Filename)
				if rerr != nil {
					rel = pos.Filename
				}
				if jsonOut {
					if err := enc.Encode(jsonDiag{
						File:     rel,
						Line:     pos.Line,
						Col:      pos.Column,
						Analyzer: d.Analyzer,
						Severity: d.Severity.String(),
						Message:  d.Message,
					}); err != nil {
						return err
					}
				} else {
					fmt.Fprintf(w, "%s:%d:%d: %s: %s: %s\n", rel, pos.Line, pos.Column, d.Severity, d.Analyzer, d.Message)
				}
				// Severities order error(0) < warning(1); a diagnostic
				// fails the run when it is at least as severe as the
				// threshold.
				if failAt >= 0 && d.Severity <= failAt {
					failing = true
				}
			}
		}
	}
	if failing {
		return errDiagnostics
	}
	return nil
}
