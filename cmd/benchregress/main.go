// Command benchregress is the performance-regression gate: it compares
// freshly measured bench reports against the committed baseline
// (results/bench.json) and fails when any family's batch-ingest path
// regressed beyond the tolerance. `make bench-regress` wires it up:
//
//	go run ./cmd/bench -families-only -out /tmp/bench-fresh-1.json
//	go run ./cmd/bench -families-only -out /tmp/bench-fresh-2.json
//	go run ./cmd/benchregress -baseline results/bench.json \
//	    -fresh /tmp/bench-fresh-1.json,/tmp/bench-fresh-2.json
//
// -fresh takes a comma-separated list and gates on the per-family
// MINIMUM ns/op across the runs: scheduler and frequency noise on a
// shared builder only ever makes a run slower, so the min over a few
// runs estimates the true cost while a single sample flakes. Only the
// per-family numbers gate: they are single-threaded tight loops, far
// more stable than the server throughput series. Families present in
// only one report are skipped with a notice (new families have no
// baseline; retired ones no fresh number), so adding a family never
// breaks the gate. Allocation counts gate exactly: a batch path that
// starts allocating where the baseline did not is a regression
// regardless of speed.
//
// When the baseline carries a window section (schema 4), the roll-up
// query plane gates too: for every baseline point with window length
// ≥ -window-min epochs, the best ladder-vs-flat speedup across the
// fresh runs must stay at or above -window-floor (default 5x). The
// floor is deliberately far below the measured ratios — it trips on
// "the planner stopped using coarse segments", not on machine noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type pathResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type familyResult struct {
	Family  string     `json:"family"`
	PerItem pathResult `json:"per_item"`
	Batch   pathResult `json:"batch"`
}

type windowPoint struct {
	Window  uint64  `json:"window_epochs"`
	Speedup float64 `json:"speedup"`
}

type windowReport struct {
	Points []windowPoint `json:"points"`
}

type report struct {
	Schema   int            `json:"schema"`
	Families []familyResult `json:"families"`
	Window   *windowReport  `json:"window"`
}

func load(path string) (map[string]familyResult, *windowReport, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]familyResult, len(r.Families))
	for _, f := range r.Families {
		out[f.Family] = f
	}
	return out, r.Window, r.Schema, nil
}

func main() {
	baseline := flag.String("baseline", "results/bench.json", "committed baseline report")
	fresh := flag.String("fresh", "", "comma-separated freshly measured reports (required); gates on the per-family min ns/op")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional batch ns/op regression per family")
	windowFloor := flag.Float64("window-floor", 5.0, "minimum ladder-vs-flat window query speedup at long windows")
	windowMin := flag.Uint64("window-min", 256, "window length (epochs) at and above which -window-floor gates")
	flag.Parse()
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchregress: -fresh is required")
		os.Exit(2)
	}

	base, baseWin, baseSchema, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchregress: %v\n", err)
		os.Exit(2)
	}
	cur := make(map[string]familyResult)
	// Best (max) speedup per window length across fresh runs: noise only
	// ever drags a ladder query toward flat, so the max estimates the
	// true ratio the same way min ns/op estimates the true cost.
	winBest := make(map[uint64]float64)
	freshHasWindow := false
	for _, path := range strings.Split(*fresh, ",") {
		run, runWin, curSchema, err := load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchregress: %v\n", err)
			os.Exit(2)
		}
		if baseSchema != curSchema {
			fmt.Printf("note: schema %d (baseline) vs %d (%s); families compared by name\n", baseSchema, curSchema, path)
		}
		for name, f := range run {
			best, seen := cur[name]
			if !seen || f.Batch.NsPerOp < best.Batch.NsPerOp {
				if seen && best.Batch.AllocsPerOp < f.Batch.AllocsPerOp {
					f.Batch.AllocsPerOp = best.Batch.AllocsPerOp
				}
				cur[name] = f
			}
		}
		if runWin != nil {
			freshHasWindow = true
			for _, p := range runWin.Points {
				if p.Speedup > winBest[p.Window] {
					winBest[p.Window] = p.Speedup
				}
			}
		}
	}

	failed := 0
	compared := 0
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			fmt.Printf("skip: %-28s not in fresh report\n", name)
			continue
		}
		compared++
		ratio := c.Batch.NsPerOp / b.Batch.NsPerOp
		switch {
		case c.Batch.AllocsPerOp > b.Batch.AllocsPerOp:
			failed++
			fmt.Printf("FAIL: %-28s batch allocs/op %d -> %d\n",
				name, b.Batch.AllocsPerOp, c.Batch.AllocsPerOp)
		case ratio > 1+*tolerance:
			failed++
			fmt.Printf("FAIL: %-28s batch %.2f -> %.2f ns/op (%.1f%% slower, tolerance %.0f%%)\n",
				name, b.Batch.NsPerOp, c.Batch.NsPerOp, (ratio-1)*100, *tolerance*100)
		default:
			fmt.Printf("ok:   %-28s batch %.2f -> %.2f ns/op (%+.1f%%)\n",
				name, b.Batch.NsPerOp, c.Batch.NsPerOp, (ratio-1)*100)
		}
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fmt.Printf("skip: %-28s not in baseline (new family)\n", name)
		}
	}
	// Window query-plane gate: the ladder must keep beating the flat
	// per-epoch plan by at least -window-floor at long windows. A
	// baseline with a window section and a fresh report without one
	// means the series silently stopped running — that fails too.
	winGated := 0
	switch {
	case baseWin == nil && !freshHasWindow:
		// Pre-window baseline against pre-window fresh runs: nothing to gate.
	case !freshHasWindow:
		failed++
		fmt.Printf("FAIL: window series in baseline but missing from every fresh report\n")
	default:
		for _, p := range baseWin.Points {
			if p.Window < *windowMin {
				continue
			}
			got, ok := winBest[p.Window]
			if !ok {
				failed++
				fmt.Printf("FAIL: window W=%-5d in baseline but not in fresh reports\n", p.Window)
				continue
			}
			winGated++
			if got < *windowFloor {
				failed++
				fmt.Printf("FAIL: window W=%-5d ladder speedup %.2fx (floor %.1fx)\n", p.Window, got, *windowFloor)
			} else {
				fmt.Printf("ok:   window W=%-5d ladder speedup %.2fx (floor %.1fx)\n", p.Window, got, *windowFloor)
			}
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchregress: no families in common; refusing to pass vacuously")
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchregress: %d checks failed (%d families compared, %d window points gated)\n", failed, compared, winGated)
		os.Exit(1)
	}
	fmt.Printf("benchregress: %d families within %.0f%% of baseline, %d window points above %.1fx\n", compared, *tolerance*100, winGated, *windowFloor)
}
