// Command mergesum is a small CLI over the mergeable-summaries
// library: generate synthetic streams, build summaries, merge summary
// files in any order, and query the result. It demonstrates the
// distributed workflow end to end with durable, checksummed summary
// files.
//
// Usage:
//
//	mergesum gen   -kind zipf -n 100000 -alpha 1.2 -u 5000 -seed 1 -out stream.txt
//	mergesum build -type mg -k 64 -in stream.txt -out s1.mg
//	mergesum merge -type mg -low-error -out all.mg s1.mg s2.mg s3.mg
//	mergesum query -type mg -in all.mg -top 10
//	mergesum query -type quantile -in all.q -phi 0.5,0.99
//	mergesum inspect -type mg -in all.mg
//
// Summary types: mg, ss (item streams: one uint64 per line);
// gk, quantile (value streams: one float per line).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/gk"
	"repro/internal/mg"
	"repro/internal/randquant"
	"repro/internal/server"
	"repro/internal/spacesaving"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "build":
		err = cmdBuild(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "push":
		err = cmdPush(os.Args[2:])
	case "pull":
		err = cmdPull(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mergesum:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `mergesum <gen|build|merge|query|inspect|push|pull> [flags]
  gen     -kind zipf|uniform|seq|normal|lognormal -n N [-alpha A] [-u U] [-seed S] -out FILE
  build   -type mg|ss|gk|quantile [-k K | -eps E] [-seed S] -in STREAM -out SUMMARY
  merge   -type mg|ss|gk|quantile [-low-error] -out SUMMARY FILE...
  query   -type mg|ss [-top T] [-threshold F] -in SUMMARY
          -type gk|quantile [-phi 0.5,0.9,...] -in SUMMARY
  inspect -type mg|ss|gk|quantile -in SUMMARY
  push    -addr HOST:PORT -slot NAME -type mg|ss|gk|quantile -in SUMMARY   (to summaryd)
  pull    -addr HOST:PORT -slot NAME -out SUMMARY                          (from summaryd)`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "zipf", "zipf|uniform|seq|normal|lognormal")
	n := fs.Int("n", 100000, "stream length")
	alpha := fs.Float64("alpha", 1.2, "zipf skew")
	u := fs.Int("u", 5000, "universe size")
	seed := fs.Uint64("seed", 1, "seed")
	out := fs.String("out", "", "output file (one value per line)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()
	switch *kind {
	case "zipf":
		for _, x := range gen.NewZipf(*u, *alpha, *seed).Stream(*n) {
			fmt.Fprintln(w, uint64(x))
		}
	case "uniform":
		for _, x := range gen.Uniform(*n, *u, *seed) {
			fmt.Fprintln(w, uint64(x))
		}
	case "seq":
		for _, x := range gen.Sequential(*n) {
			fmt.Fprintln(w, uint64(x))
		}
	case "normal":
		for _, v := range gen.NormalValues(*n, *seed) {
			fmt.Fprintln(w, v)
		}
	case "lognormal":
		for _, v := range gen.LogNormalValues(*n, 0, 1, *seed) {
			fmt.Fprintln(w, v)
		}
	default:
		return fmt.Errorf("gen: unknown kind %q", *kind)
	}
	return nil
}

func readItems(path string) ([]core.Item, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []core.Item
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		v, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, core.Item(v))
	}
	return out, sc.Err()
}

func readValues(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}

type binaryCodec interface {
	MarshalBinary() ([]byte, error)
	UnmarshalBinary([]byte) error
}

func writeSummary(path string, s binaryCodec) error {
	data, err := s.MarshalBinary()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func readSummary(path string, s binaryCodec) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return s.UnmarshalBinary(data)
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	typ := fs.String("type", "mg", "mg|ss|gk|quantile")
	k := fs.Int("k", 64, "counters (mg/ss)")
	eps := fs.Float64("eps", 0.01, "error parameter (gk/quantile)")
	seed := fs.Uint64("seed", 1, "seed (quantile)")
	in := fs.String("in", "", "input stream file")
	out := fs.String("out", "", "output summary file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("build: -in and -out are required")
	}
	switch *typ {
	case "mg", "ss":
		items, err := readItems(*in)
		if err != nil {
			return err
		}
		if *typ == "mg" {
			s := mg.New(*k)
			s.UpdateBatch(items)
			return writeSummary(*out, s)
		}
		s := spacesaving.New(*k)
		s.UpdateBatch(items)
		return writeSummary(*out, s)
	case "gk", "quantile":
		vals, err := readValues(*in)
		if err != nil {
			return err
		}
		if *typ == "gk" {
			s := gk.New(*eps)
			s.UpdateBatch(vals)
			return writeSummary(*out, s)
		}
		s := randquant.NewEpsilon(*eps, *seed)
		s.UpdateBatch(vals)
		return writeSummary(*out, s)
	default:
		return fmt.Errorf("build: unknown type %q", *typ)
	}
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	typ := fs.String("type", "mg", "mg|ss|gk|quantile")
	lowError := fs.Bool("low-error", false, "use the low-total-error merge (mg/ss)")
	out := fs.String("out", "", "output summary file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if *out == "" || len(files) == 0 {
		return fmt.Errorf("merge: -out and at least one input file are required")
	}
	switch *typ {
	case "mg":
		acc := new(mg.Summary)
		if err := readSummary(files[0], acc); err != nil {
			return err
		}
		for _, path := range files[1:] {
			next := new(mg.Summary)
			if err := readSummary(path, next); err != nil {
				return err
			}
			var err error
			if *lowError {
				err = acc.MergeLowError(next)
			} else {
				err = acc.Merge(next)
			}
			if err != nil {
				return fmt.Errorf("merging %s: %w", path, err)
			}
		}
		return writeSummary(*out, acc)
	case "ss":
		acc := new(spacesaving.Summary)
		if err := readSummary(files[0], acc); err != nil {
			return err
		}
		for _, path := range files[1:] {
			next := new(spacesaving.Summary)
			if err := readSummary(path, next); err != nil {
				return err
			}
			var err error
			if *lowError {
				err = acc.MergeLowError(next)
			} else {
				err = acc.Merge(next)
			}
			if err != nil {
				return fmt.Errorf("merging %s: %w", path, err)
			}
		}
		return writeSummary(*out, acc)
	case "gk":
		acc := new(gk.Summary)
		if err := readSummary(files[0], acc); err != nil {
			return err
		}
		for _, path := range files[1:] {
			next := new(gk.Summary)
			if err := readSummary(path, next); err != nil {
				return err
			}
			if err := acc.Merge(next); err != nil {
				return fmt.Errorf("merging %s: %w", path, err)
			}
		}
		return writeSummary(*out, acc)
	case "quantile":
		acc := new(randquant.Summary)
		if err := readSummary(files[0], acc); err != nil {
			return err
		}
		for _, path := range files[1:] {
			next := new(randquant.Summary)
			if err := readSummary(path, next); err != nil {
				return err
			}
			if err := acc.Merge(next); err != nil {
				return fmt.Errorf("merging %s: %w", path, err)
			}
		}
		return writeSummary(*out, acc)
	default:
		return fmt.Errorf("merge: unknown type %q", *typ)
	}
}

func parsePhis(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	typ := fs.String("type", "mg", "mg|ss|gk|quantile")
	top := fs.Int("top", 10, "report the top-T candidates (mg/ss)")
	threshold := fs.Float64("threshold", 0, "report items above this fraction of n (mg/ss; overrides -top)")
	phis := fs.String("phi", "0.5,0.9,0.99", "comma-separated quantiles (gk/quantile)")
	in := fs.String("in", "", "summary file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("query: -in is required")
	}
	switch *typ {
	case "mg":
		s := new(mg.Summary)
		if err := readSummary(*in, s); err != nil {
			return err
		}
		return printCounters(s.N(), counterQuery{
			top:       s.Counters(),
			threshold: func(t uint64) []core.Counter { return s.HeavyHitters(t) },
			estimate:  s.Estimate,
		}, *top, *threshold)
	case "ss":
		s := new(spacesaving.Summary)
		if err := readSummary(*in, s); err != nil {
			return err
		}
		return printCounters(s.N(), counterQuery{
			top:       s.Counters(),
			threshold: func(t uint64) []core.Counter { return s.HeavyHitters(t) },
			estimate:  s.Estimate,
		}, *top, *threshold)
	case "gk":
		s := new(gk.Summary)
		if err := readSummary(*in, s); err != nil {
			return err
		}
		return printQuantiles(s.N(), s.Quantile, *phis)
	case "quantile":
		s := new(randquant.Summary)
		if err := readSummary(*in, s); err != nil {
			return err
		}
		return printQuantiles(s.N(), s.Quantile, *phis)
	default:
		return fmt.Errorf("query: unknown type %q", *typ)
	}
}

type counterQuery struct {
	top       []core.Counter
	threshold func(uint64) []core.Counter
	estimate  func(core.Item) core.Estimate
}

func printCounters(n uint64, q counterQuery, top int, thresholdFrac float64) error {
	fmt.Printf("n=%d\n", n)
	var report []core.Counter
	if thresholdFrac > 0 {
		t := uint64(thresholdFrac * float64(n))
		report = q.threshold(t)
		fmt.Printf("items with estimate reaching %d (%.4g of n):\n", t, thresholdFrac)
	} else {
		report = core.TopCounters(q.top, top)
		fmt.Printf("top %d candidates:\n", len(report))
	}
	for _, c := range report {
		fmt.Printf("  item %-12d %s\n", uint64(c.Item), q.estimate(c.Item))
	}
	return nil
}

func printQuantiles(n uint64, quantile func(float64) float64, phiList string) error {
	phis, err := parsePhis(phiList)
	if err != nil {
		return err
	}
	fmt.Printf("n=%d\n", n)
	for _, phi := range phis {
		fmt.Printf("  phi=%-6g %v\n", phi, quantile(phi))
	}
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	typ := fs.String("type", "mg", "mg|ss|gk|quantile")
	in := fs.String("in", "", "summary file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("inspect: -in is required")
	}
	fi, err := os.Stat(*in)
	if err != nil {
		return err
	}
	switch *typ {
	case "mg":
		s := new(mg.Summary)
		if err := readSummary(*in, s); err != nil {
			return err
		}
		fmt.Printf("misra-gries: k=%d n=%d counters=%d errorBound=%d bytes=%d\n",
			s.K(), s.N(), s.Len(), s.ErrorBound(), fi.Size())
	case "ss":
		s := new(spacesaving.Summary)
		if err := readSummary(*in, s); err != nil {
			return err
		}
		fmt.Printf("spacesaving: k=%d n=%d counters=%d min=%d under=%d bytes=%d\n",
			s.K(), s.N(), s.Len(), s.MinCount(), s.UnderBound(), fi.Size())
	case "gk":
		s := new(gk.Summary)
		if err := readSummary(*in, s); err != nil {
			return err
		}
		fmt.Printf("gk: eps=%g n=%d tuples=%d bytes=%d\n", s.Epsilon(), s.N(), s.Size(), fi.Size())
	case "quantile":
		s := new(randquant.Summary)
		if err := readSummary(*in, s); err != nil {
			return err
		}
		fmt.Printf("quantile: blockSize=%d n=%d samples=%d levels=%d bytes=%d\n",
			s.BlockSize(), s.N(), s.Size(), s.Levels(), fi.Size())
	default:
		return fmt.Errorf("inspect: unknown type %q", *typ)
	}
	return nil
}

func cmdPush(args []string) error {
	fs := flag.NewFlagSet("push", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "summaryd address")
	slot := fs.String("slot", "", "slot name")
	typ := fs.String("type", "mg", "mg|ss|gk|quantile")
	in := fs.String("in", "", "summary file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *slot == "" || *in == "" {
		return fmt.Errorf("push: -slot and -in are required")
	}
	var s interface {
		MarshalBinary() ([]byte, error)
		UnmarshalBinary([]byte) error
	}
	switch *typ {
	case "mg":
		s = new(mg.Summary)
	case "ss":
		s = new(spacesaving.Summary)
	case "gk":
		s = new(gk.Summary)
	case "quantile":
		s = new(randquant.Summary)
	default:
		return fmt.Errorf("push: unknown type %q", *typ)
	}
	if err := readSummary(*in, s); err != nil {
		return err
	}
	c, err := server.Dial(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	n, err := c.Push(*slot, *typ, s)
	if err != nil {
		return err
	}
	fmt.Printf("pushed %s into %s, slot weight now %d\n", *in, *slot, n)
	return nil
}

func cmdPull(args []string) error {
	fs := flag.NewFlagSet("pull", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "summaryd address")
	slot := fs.String("slot", "", "slot name")
	out := fs.String("out", "", "output summary file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *slot == "" || *out == "" {
		return fmt.Errorf("pull: -slot and -out are required")
	}
	c, err := server.Dial(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	var raw rawFrame
	kind, err := c.Pull(*slot, &raw)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("pulled slot %s (kind %s, %d bytes) into %s\n", *slot, kind, len(raw), *out)
	return nil
}

// rawFrame stores pulled bytes verbatim so the CLI can persist any
// summary kind without decoding it.
type rawFrame []byte

func (r *rawFrame) UnmarshalBinary(data []byte) error {
	*r = append((*r)[:0], data...)
	return nil
}
