package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mg"
	"repro/internal/randquant"
)

// End-to-end CLI workflow: gen → split → build → merge → query,
// exercising both the counter pipeline and the quantile pipeline.
func TestItemPipeline(t *testing.T) {
	dir := t.TempDir()
	stream := filepath.Join(dir, "stream.txt")
	if err := cmdGen([]string{"-kind", "zipf", "-n", "20000", "-u", "500", "-alpha", "1.3", "-seed", "3", "-out", stream}); err != nil {
		t.Fatal(err)
	}

	// Split the stream into 3 shards.
	data, err := os.ReadFile(stream)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 20000 {
		t.Fatalf("generated %d lines", len(lines))
	}
	var shardFiles []string
	for i := 0; i < 3; i++ {
		lo, hi := i*len(lines)/3, (i+1)*len(lines)/3
		p := filepath.Join(dir, "shard"+string(rune('a'+i))+".txt")
		if err := os.WriteFile(p, []byte(strings.Join(lines[lo:hi], "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		shardFiles = append(shardFiles, p)
	}

	// Build one summary per shard, for both counter types.
	for _, typ := range []string{"mg", "ss"} {
		var sums []string
		for _, sf := range shardFiles {
			out := sf + "." + typ
			if err := cmdBuild([]string{"-type", typ, "-k", "32", "-in", sf, "-out", out}); err != nil {
				t.Fatalf("%s build: %v", typ, err)
			}
			sums = append(sums, out)
		}
		merged := filepath.Join(dir, "all."+typ)
		args := []string{"-type", typ, "-low-error", "-out", merged}
		if err := cmdMerge(append(args, sums...)); err != nil {
			t.Fatalf("%s merge: %v", typ, err)
		}
		if err := cmdQuery([]string{"-type", typ, "-in", merged, "-top", "5"}); err != nil {
			t.Fatalf("%s query: %v", typ, err)
		}
		if err := cmdInspect([]string{"-type", typ, "-in", merged}); err != nil {
			t.Fatalf("%s inspect: %v", typ, err)
		}
	}

	// The merged MG summary must carry the full weight.
	var s mg.Summary
	if err := readSummary(filepath.Join(dir, "all.mg"), &s); err != nil {
		t.Fatal(err)
	}
	if s.N() != 20000 {
		t.Fatalf("merged N = %d", s.N())
	}
	if s.Len() > 32 {
		t.Fatalf("merged size %d > k", s.Len())
	}
}

func TestValuePipeline(t *testing.T) {
	dir := t.TempDir()
	stream := filepath.Join(dir, "vals.txt")
	if err := cmdGen([]string{"-kind", "lognormal", "-n", "10000", "-seed", "5", "-out", stream}); err != nil {
		t.Fatal(err)
	}
	for _, typ := range []string{"gk", "quantile"} {
		sum := filepath.Join(dir, "s."+typ)
		if err := cmdBuild([]string{"-type", typ, "-eps", "0.02", "-in", stream, "-out", sum}); err != nil {
			t.Fatalf("%s build: %v", typ, err)
		}
		merged := filepath.Join(dir, "m."+typ)
		if err := cmdMerge([]string{"-type", typ, "-out", merged, sum, sum}); err != nil {
			t.Fatalf("%s merge: %v", typ, err)
		}
		if err := cmdQuery([]string{"-type", typ, "-in", merged, "-phi", "0.5,0.99"}); err != nil {
			t.Fatalf("%s query: %v", typ, err)
		}
		if err := cmdInspect([]string{"-type", typ, "-in", merged}); err != nil {
			t.Fatalf("%s inspect: %v", typ, err)
		}
	}
	// Self-merge doubles N.
	var q randquant.Summary
	if err := readSummary(filepath.Join(dir, "m.quantile"), &q); err != nil {
		t.Fatal(err)
	}
	if q.N() != 20000 {
		t.Fatalf("merged quantile N = %d", q.N())
	}
}

func TestGenKinds(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"zipf", "uniform", "seq", "normal", "lognormal"} {
		out := filepath.Join(dir, kind+".txt")
		if err := cmdGen([]string{"-kind", kind, "-n", "100", "-out", out}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(strings.Split(strings.TrimSpace(string(data)), "\n")); got != 100 {
			t.Fatalf("%s produced %d lines", kind, got)
		}
	}
	if err := cmdGen([]string{"-kind", "nope", "-out", filepath.Join(dir, "x")}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := cmdGen([]string{"-kind", "zipf"}); err == nil {
		t.Fatal("missing -out accepted")
	}
}

func TestErrorPaths(t *testing.T) {
	dir := t.TempDir()
	if err := cmdBuild([]string{"-type", "nope", "-in", "x", "-out", "y"}); err == nil {
		t.Error("unknown build type accepted")
	}
	if err := cmdBuild([]string{"-type", "mg"}); err == nil {
		t.Error("missing files accepted")
	}
	if err := cmdMerge([]string{"-type", "mg", "-out", filepath.Join(dir, "o")}); err == nil {
		t.Error("merge without inputs accepted")
	}
	if err := cmdQuery([]string{"-type", "mg", "-in", filepath.Join(dir, "missing")}); err == nil {
		t.Error("query on missing file accepted")
	}
	// Type confusion must be caught by the frame kind.
	stream := filepath.Join(dir, "s.txt")
	if err := cmdGen([]string{"-kind", "zipf", "-n", "100", "-out", stream}); err != nil {
		t.Fatal(err)
	}
	mgFile := filepath.Join(dir, "s.mg")
	if err := cmdBuild([]string{"-type", "mg", "-k", "8", "-in", stream, "-out", mgFile}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-type", "ss", "-in", mgFile}); err == nil {
		t.Error("ss query decoded an mg file")
	}
	// Corrupted file must be rejected.
	data, _ := os.ReadFile(mgFile)
	data[len(data)-3] ^= 0xff
	bad := filepath.Join(dir, "bad.mg")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-type", "mg", "-in", bad}); err == nil {
		t.Error("corrupted summary accepted")
	}
}

func TestParsePhis(t *testing.T) {
	got, err := parsePhis("0.5, 0.9,0.99")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0.5 || got[2] != 0.99 {
		t.Fatalf("parsePhis = %v", got)
	}
	if _, err := parsePhis("0.5,x"); err == nil {
		t.Fatal("bad phi accepted")
	}
}
