package main

import (
	"path/filepath"
	"testing"

	"repro/internal/mg"
	"repro/internal/server"
)

// End-to-end: build summaries with the CLI, push them to a live
// summaryd, pull the merged slot back, and verify it decodes.
func TestPushPullAgainstDaemon(t *testing.T) {
	srv := server.New()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	defer func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	dir := t.TempDir()
	stream := filepath.Join(dir, "s.txt")
	if err := cmdGen([]string{"-kind", "zipf", "-n", "5000", "-u", "200", "-out", stream}); err != nil {
		t.Fatal(err)
	}
	sum1 := filepath.Join(dir, "s1.mg")
	sum2 := filepath.Join(dir, "s2.mg")
	if err := cmdBuild([]string{"-type", "mg", "-k", "16", "-in", stream, "-out", sum1}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-type", "mg", "-k", "16", "-in", stream, "-out", sum2}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{sum1, sum2} {
		if err := cmdPush([]string{"-addr", addr, "-slot", "flows", "-type", "mg", "-in", f}); err != nil {
			t.Fatalf("push %s: %v", f, err)
		}
	}
	out := filepath.Join(dir, "merged.mg")
	if err := cmdPull([]string{"-addr", addr, "-slot", "flows", "-out", out}); err != nil {
		t.Fatal(err)
	}
	var merged mg.Summary
	if err := readSummary(out, &merged); err != nil {
		t.Fatal(err)
	}
	if merged.N() != 10000 {
		t.Fatalf("merged N = %d, want 10000", merged.N())
	}
	// The pulled file is queryable through the normal path too.
	if err := cmdQuery([]string{"-type", "mg", "-in", out, "-top", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestPushErrors(t *testing.T) {
	if err := cmdPush([]string{"-slot", "", "-in", ""}); err == nil {
		t.Error("missing flags accepted")
	}
	if err := cmdPush([]string{"-slot", "x", "-in", "y", "-type", "nope"}); err == nil {
		t.Error("unknown type accepted")
	}
	if err := cmdPull([]string{"-slot", "", "-out", ""}); err == nil {
		t.Error("missing flags accepted")
	}
	// Unreachable server.
	if err := cmdPull([]string{"-addr", "127.0.0.1:1", "-slot", "x", "-out", "/tmp/x"}); err == nil {
		t.Error("unreachable server accepted")
	}
}
