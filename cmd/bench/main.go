// Command bench measures the per-item and batched ingestion paths of
// every summary family, the aggregation server's push/pull/merge
// throughput at 1–16 clients, and mergetree.Parallel's worker scaling,
// recording everything as JSON so the trajectories can be tracked
// across commits.
//
// Usage:
//
//	go run ./cmd/bench -out results/bench.json [-benchtime 1s] [-serverdur 300ms]
//
// ns/op is per ingested item on both paths (batch benchmarks advance
// b.N by the batch length per call), so speedup = per_item / batch.
// Server points are whole-system ops/s measured over -serverdur of
// wall time per (op, client-count) pair; the PULL series is measured
// twice, with the epoch snapshot cache on and off, and their ratio is
// the headline pull_cache_speedup. The server_kinds series enumerates
// the registry catalog — one push/pull throughput row per registered
// family — so the report always covers exactly the kinds the daemon
// serves.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	mergesum "repro"
	"repro/internal/countmin"
	"repro/internal/gen"
	"repro/internal/mergetree"
	"repro/internal/mg"
	"repro/internal/qdigest"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/window"
)

const (
	streamLen = 1 << 16
	batchLen  = 1024
)

type pathResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

type familyResult struct {
	Family  string     `json:"family"`
	PerItem pathResult `json:"per_item"`
	Batch   pathResult `json:"batch"`
	Speedup float64    `json:"speedup"`
}

// serverPoint is one (client count, throughput) measurement.
type serverPoint struct {
	Clients   int     `json:"clients"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// serverSeries is one server operation measured across client counts.
type serverSeries struct {
	Op     string        `json:"op"`
	Points []serverPoint `json:"points"`
}

// serverReport aggregates the server-path series. PullCacheSpeedup is
// cached-pull throughput over re-encode-pull throughput at the largest
// client count — the epoch snapshot cache's headline win.
type serverReport struct {
	DurPerPoint      string         `json:"dur_per_point"`
	Series           []serverSeries `json:"series"`
	PullCacheSpeedup float64        `json:"pull_cache_speedup"`
}

// kindPoint is one registry family's server push/pull throughput at a
// fixed client count — the per-kind view of the aggregation plane, one
// row per registered family.
type kindPoint struct {
	Kind       string  `json:"kind"`
	Clients    int     `json:"clients"`
	FrameBytes int     `json:"frame_bytes"`
	PushPerSec float64 `json:"push_ops_per_sec"`
	PullPerSec float64 `json:"pull_ops_per_sec"`
}

// mergeScalePoint is one mergetree.Parallel worker-count measurement
// over a fixed partition set; Speedup is relative to workers=1.
type mergeScalePoint struct {
	Workers     int     `json:"workers"`
	NsPerReduce float64 `json:"ns_per_reduce"`
	Speedup     float64 `json:"speedup"`
}

// windowPoint is one window-length query-latency measurement: the
// multi-resolution ladder plan vs the flat per-epoch plan over the
// same sealed epoch range, with roll-up segments precomputed and the
// query-result cache off, so the numbers isolate plan + decode +
// merge + encode cost.
type windowPoint struct {
	Window       uint64  `json:"window_epochs"`
	LadderNs     float64 `json:"ladder_ns_per_query"`
	FlatNs       float64 `json:"flat_ns_per_query"`
	LadderPieces int     `json:"ladder_cover_pieces"`
	FlatPieces   int     `json:"flat_cover_pieces"`
	Speedup      float64 `json:"speedup"`
}

// windowReport is the roll-up plane's query-latency series.
type windowReport struct {
	Family string        `json:"family"`
	Fan    int           `json:"fan"`
	Levels int           `json:"levels"`
	Epochs uint64        `json:"epochs"`
	Points []windowPoint `json:"points"`
}

// clusterReport measures the multi-node aggregation plane over three
// in-process peer-mode nodes: consistent-hash routed push throughput
// through the ClusterClient, and cluster-wide PULLC fan-in throughput
// against node-local PULL on the same starred slot — the fan-in cost
// ratio is what a dashboard pays for asking one node to answer for
// the whole cluster.
type clusterReport struct {
	Nodes             int     `json:"nodes"`
	DurPerPoint       string  `json:"dur_per_point"`
	Clients           int     `json:"clients"`
	RoutedPushPerSec  float64 `json:"routed_push_ops_per_sec"`
	PullLocalPerSec   float64 `json:"pull_local_ops_per_sec"`
	PullClusterPerSec float64 `json:"pull_cluster_ops_per_sec"`
	FanInCost         float64 `json:"fan_in_cost_ratio"`
}

type report struct {
	Schema       int               `json:"schema"`
	Go           string            `json:"go"`
	GOOS         string            `json:"goos"`
	GOARCH       string            `json:"goarch"`
	GOMAXPROCS   int               `json:"gomaxprocs"`
	BatchLen     int               `json:"batch_len"`
	StreamLen    int               `json:"stream_len"`
	Families     []familyResult    `json:"families"`
	Window       *windowReport     `json:"window,omitempty"`
	Server       *serverReport     `json:"server,omitempty"`
	ServerKinds  []kindPoint       `json:"server_kinds,omitempty"`
	MergeScaling []mergeScalePoint `json:"merge_scaling,omitempty"`
	Cluster      *clusterReport    `json:"cluster,omitempty"`
}

func toPath(r testing.BenchmarkResult) pathResult {
	return pathResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

type workload struct {
	family  string
	perItem func(b *testing.B)
	batch   func(b *testing.B)
}

func itemWorkload(family string, stream []mergesum.Item,
	mk func() func(x mergesum.Item), mkBatch func() func(xs []mergesum.Item)) workload {
	return workload{
		family: family,
		perItem: func(b *testing.B) {
			up := mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				up(stream[i%len(stream)])
			}
		},
		batch: func(b *testing.B) {
			up := mkBatch()
			b.ResetTimer()
			for i := 0; i < b.N; i += batchLen {
				off := i % (len(stream) - batchLen)
				up(stream[off : off+batchLen])
			}
		},
	}
}

func valueWorkload(family string, vals []float64,
	mk func() func(v float64), mkBatch func() func(vs []float64)) workload {
	return workload{
		family: family,
		perItem: func(b *testing.B) {
			up := mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				up(vals[i%len(vals)])
			}
		},
		batch: func(b *testing.B) {
			up := mkBatch()
			b.ResetTimer()
			for i := 0; i < b.N; i += batchLen {
				off := i % (len(vals) - batchLen)
				up(vals[off : off+batchLen])
			}
		},
	}
}

// shardedWorkload ingests the stream from GOMAXPROCS goroutines into p
// lock-guarded shards of any summary type: per item (one lock
// acquisition each) vs batched (one acquisition per shard per batchLen
// items, with the shard's own UpdateBatch inside the lock).
func shardedWorkload[S any](family string, p int, stream []mergesum.Item,
	mk func(int) S, update func(S, mergesum.Item), updateBatch func(S, []mergesum.Item)) workload {
	return workload{
		family: fmt.Sprintf("%s/shards=%d", family, p),
		perItem: func(b *testing.B) {
			sh := shard.New(p, mk)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					x := stream[i%len(stream)]
					sh.Update(uint64(x), func(s S) { update(s, x) })
					i++
				}
			})
		},
		batch: func(b *testing.B) {
			sh := shard.New(p, mk)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				buf := make([]mergesum.Item, 0, batchLen)
				scratch := make([]mergesum.Item, 0, batchLen)
				i := 0
				flush := func() {
					if len(buf) == 0 {
						return
					}
					sh.UpdateBatch(len(buf),
						func(j int) uint64 { return uint64(buf[j]) },
						func(s S, idxs []int) {
							scratch = scratch[:0]
							for _, j := range idxs {
								scratch = append(scratch, buf[j])
							}
							updateBatch(s, scratch)
						})
					buf = buf[:0]
				}
				for pb.Next() {
					buf = append(buf, stream[i%len(stream)])
					i++
					if len(buf) == batchLen {
						flush()
					}
				}
				flush()
			})
		},
	}
}

func shardedMG(p int, stream []mergesum.Item) workload {
	return shardedWorkload("sharded_mg", p, stream,
		func(int) *mergesum.MisraGries { return mergesum.NewMisraGries(256) },
		func(s *mergesum.MisraGries, x mergesum.Item) { s.Update(x, 1) },
		func(s *mergesum.MisraGries, xs []mergesum.Item) { s.UpdateBatch(xs) })
}

func shardedHLL(p int, stream []mergesum.Item) workload {
	return shardedWorkload("sharded_hll", p, stream,
		func(int) *mergesum.HLL { return mergesum.NewHLL(12, 1) },
		func(s *mergesum.HLL, x mergesum.Item) { s.Update(x) },
		func(s *mergesum.HLL, xs []mergesum.Item) { s.UpdateBatch(xs) })
}

// startServer boots an in-process aggregation server on an ephemeral
// port; cache toggles the PULL snapshot cache.
func startServer(cache bool) (string, func(), error) {
	s := server.New()
	s.SetSnapshotCache(cache)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	return addr, func() { s.Close(); <-done }, nil
}

// discard drops pulled frame bytes: the pull series measures the
// server's encode/cache path, not client-side decoding.
type discard struct{}

func (discard) UnmarshalBinary([]byte) error { return nil }

// measureServer runs clients connections against addr for roughly dur,
// each looping op, and returns aggregate ops/s.
func measureServer(addr string, clients int, dur time.Duration, op func(c *server.Client, id int) error) (float64, error) {
	var (
		ops      atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stop.Store(true)
	}
	start := time.Now()
	timer := time.AfterFunc(dur, func() { stop.Store(true) })
	defer timer.Stop()
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				fail(err)
				return
			}
			defer c.Close()
			for !stop.Load() {
				if err := op(c, id); err != nil {
					fail(err)
					return
				}
				ops.Add(1)
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return float64(ops.Load()) / elapsed, firstErr
}

// serverWorkloads measures push/s (independent slots), merge/s (all
// clients contending on one slot) and pull/s with the snapshot cache
// on and off, at each client count. Every point runs against a fresh
// server so points are independent.
func serverWorkloads(clientCounts []int, dur time.Duration) (*serverReport, error) {
	pushSummary := mg.New(256)
	for i, x := range gen.NewZipf(4096, 1.2, 5).Stream(1 << 12) {
		pushSummary.Update(x, uint64(i%3+1))
	}
	// The pull slot holds a wide q-digest so re-encoding it is real
	// work (the cache's whole point): every qdigest encode compresses
	// and sorts the node map, which runs well past the loopback
	// round-trip at this width.
	pullSummary := qdigest.NewEpsilon(32, 0.01)
	rng := gen.NewRNG(9)
	for i := 0; i < 1<<18; i++ {
		pullSummary.Update(rng.Uint64()>>32, 1)
	}

	type workload struct {
		op    string
		cache bool
		seed  bool
		run   func(c *server.Client, id int) error
	}
	workloads := []workload{
		{op: "push", cache: true, run: func(c *server.Client, id int) error {
			_, err := c.Push(fmt.Sprintf("ingest-%d", id), "mg", pushSummary)
			return err
		}},
		{op: "merge", cache: true, run: func(c *server.Client, id int) error {
			_, err := c.Push("merged", "mg", pushSummary)
			return err
		}},
		{op: "pull_cached", cache: true, seed: true, run: func(c *server.Client, id int) error {
			_, err := c.Pull("q", discard{})
			return err
		}},
		{op: "pull_reencode", cache: false, seed: true, run: func(c *server.Client, id int) error {
			_, err := c.Pull("q", discard{})
			return err
		}},
	}

	rep := &serverReport{DurPerPoint: dur.String()}
	byOp := make(map[string][]serverPoint, len(workloads))
	for _, wl := range workloads {
		points := make([]serverPoint, 0, len(clientCounts))
		for _, clients := range clientCounts {
			addr, stopSrv, err := startServer(wl.cache)
			if err != nil {
				return nil, err
			}
			if wl.seed {
				c, err := server.Dial(addr)
				if err == nil {
					_, err = c.Push("q", "qdigest", pullSummary)
					c.Close()
				}
				if err != nil {
					stopSrv()
					return nil, err
				}
			}
			opsPerSec, err := measureServer(addr, clients, dur, wl.run)
			stopSrv()
			if err != nil {
				return nil, err
			}
			points = append(points, serverPoint{Clients: clients, OpsPerSec: opsPerSec})
			fmt.Printf("server/%-14s clients=%-2d  %10.0f ops/s\n", wl.op, clients, opsPerSec)
		}
		byOp[wl.op] = points
		rep.Series = append(rep.Series, serverSeries{Op: wl.op, Points: points})
	}
	cached, reenc := byOp["pull_cached"], byOp["pull_reencode"]
	if n := len(cached); n > 0 && n == len(reenc) && reenc[n-1].OpsPerSec > 0 {
		rep.PullCacheSpeedup = cached[n-1].OpsPerSec / reenc[n-1].OpsPerSec
	}
	return rep, nil
}

// rawFrame pushes pre-encoded frame bytes, so the per-kind series
// measures the server's decode/merge path rather than client-side
// marshaling.
type rawFrame []byte

func (r rawFrame) MarshalBinary() ([]byte, error) { return r, nil }

// serverKindSeries measures every registered family's server-side
// push/s (decode + merge into a warm slot) and cached pull/s at a
// fixed client count. The family list is enumerated from the registry,
// so a newly registered kind shows up in the report without touching
// this file.
func serverKindSeries(clients int, dur time.Duration) ([]kindPoint, error) {
	out := make([]kindPoint, 0, len(registry.Entries()))
	for _, ent := range registry.Entries() {
		frame, err := ent.Encode(ent.Example(1 << 12))
		if err != nil {
			return nil, fmt.Errorf("%s: encoding example: %v", ent.Name(), err)
		}
		pt := kindPoint{Kind: ent.Name(), Clients: clients, FrameBytes: len(frame)}

		addr, stopSrv, err := startServer(true)
		if err != nil {
			return nil, err
		}
		pt.PushPerSec, err = measureServer(addr, clients, dur, func(c *server.Client, id int) error {
			_, err := c.Push(fmt.Sprintf("%s-%d", ent.Name(), id), ent.Name(), rawFrame(frame))
			return err
		})
		stopSrv()
		if err != nil {
			return nil, err
		}

		addr, stopSrv, err = startServer(true)
		if err != nil {
			return nil, err
		}
		c, err := server.Dial(addr)
		if err == nil {
			_, err = c.Push("q", ent.Name(), rawFrame(frame))
			c.Close()
		}
		if err != nil {
			stopSrv()
			return nil, err
		}
		pt.PullPerSec, err = measureServer(addr, clients, dur, func(c *server.Client, id int) error {
			_, err := c.Pull("q", discard{})
			return err
		})
		stopSrv()
		if err != nil {
			return nil, err
		}

		out = append(out, pt)
		fmt.Printf("server/kind=%-12s clients=%d  push %9.0f ops/s  pull %9.0f ops/s  frame %6d B\n",
			pt.Kind, clients, pt.PushPerSec, pt.PullPerSec, pt.FrameBytes)
	}
	return out, nil
}

// windowSeries measures the roll-up plane's query latency against
// window length, ladder plan (the default 8×3 shape) vs flat
// per-epoch plan over the same plane (SetMaxLevel(0), the roll-ups-off
// baseline). The mg family keeps frames small, so the measured gap is
// cover size — O(log n) precomputed segments vs O(n) per-epoch decodes
// and merges — not codec weight. The series runs in -families-only
// mode: the ladder speedup at long windows is a gated number.
func windowSeries(benchtime time.Duration) (*windowReport, error) {
	ent, ok := registry.ByName("mg")
	if !ok {
		return nil, fmt.Errorf("mg not registered")
	}
	const (
		fan    = 8
		levels = 3
		epochs = 1024
	)
	noEvict := make([]uint64, levels)
	for i := range noEvict {
		noEvict[i] = 1 << 30
	}
	p, err := window.NewPlane(ent, nil, window.Ladder{Fan: fan, Levels: levels, Horizon: noEvict})
	if err != nil {
		return nil, err
	}
	defer p.Close()
	for e := 0; e < epochs; e++ {
		if _, err := p.Absorb(ent.Example(64)); err != nil {
			return nil, err
		}
		if err := p.Advance(); err != nil {
			return nil, err
		}
	}
	p.Quiesce()
	p.SetQueryCache(false)

	flag.Set("test.benchtime", benchtime.String())
	measure := func(from, to uint64) (float64, int, error) {
		cov, err := p.Cover(from, to)
		if err != nil {
			return 0, 0, err
		}
		var qErr error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.QueryEncoded(from, to); err != nil {
					qErr = err
					b.FailNow()
				}
			}
		})
		if qErr != nil {
			return 0, 0, qErr
		}
		return float64(r.T.Nanoseconds()) / float64(r.N), len(cov.Segments), nil
	}

	rep := &windowReport{Family: ent.Name(), Fan: fan, Levels: levels, Epochs: epochs}
	for _, w := range []uint64{16, 64, 256, 1024} {
		from, to := uint64(epochs)-w+1, uint64(epochs)
		p.SetMaxLevel(-1)
		ladderNs, ladderPieces, err := measure(from, to)
		if err != nil {
			return nil, fmt.Errorf("window=%d ladder: %w", w, err)
		}
		p.SetMaxLevel(0)
		flatNs, flatPieces, err := measure(from, to)
		p.SetMaxLevel(-1)
		if err != nil {
			return nil, fmt.Errorf("window=%d flat: %w", w, err)
		}
		pt := windowPoint{
			Window: w, LadderNs: ladderNs, FlatNs: flatNs,
			LadderPieces: ladderPieces, FlatPieces: flatPieces,
		}
		if ladderNs > 0 {
			pt.Speedup = flatNs / ladderNs
		}
		rep.Points = append(rep.Points, pt)
		fmt.Printf("window/W=%-5d ladder %10.0f ns/query (%2d pieces)  flat %10.0f ns/query (%4d pieces)  speedup %.2fx\n",
			w, ladderNs, ladderPieces, flatNs, flatPieces, pt.Speedup)
	}
	return rep, nil
}

// clusterSeries boots a 3-node in-process peer cluster and measures
// the network merge plane: routed pushes through the consistent-hash
// ClusterClient, node-local PULL on a starred slot, and the same slot
// answered cluster-wide via PULLC fan-in from one node.
func clusterSeries(clients int, dur time.Duration) (*clusterReport, error) {
	const nodes = 3
	servers := make([]*server.Server, nodes)
	addrs := make([]string, nodes)
	for i := range servers {
		servers[i] = server.New()
		addr, err := servers[i].Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = addr
	}
	done := make(chan error, nodes)
	for i, s := range servers {
		s.SetPeers(addrs[i], addrs, 2*time.Second, 1)
		go func(s *server.Server) { done <- s.Serve() }(s)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
		for range servers {
			<-done
		}
	}()

	// Star the pull slot: every node holds a partial, so PULLC does
	// real three-way fan-in work.
	pushSummary := mg.New(256)
	for i, x := range gen.NewZipf(4096, 1.2, 5).Stream(1 << 12) {
		pushSummary.Update(x, uint64(i%3+1))
	}
	for _, addr := range addrs {
		c, err := server.Dial(addr)
		if err != nil {
			return nil, err
		}
		_, err = c.Push("starred", "mg", pushSummary)
		c.Close()
		if err != nil {
			return nil, err
		}
	}

	rep := &clusterReport{Nodes: nodes, DurPerPoint: dur.String(), Clients: clients}

	// Routed pushes: each client drives its own ClusterClient over a
	// spread of slot keys, so the ring scatters the load over all
	// three nodes.
	var (
		ops      atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stop.Store(true)
	}
	start := time.Now()
	timer := time.AfterFunc(dur, func() { stop.Store(true) })
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cc, err := server.DialCluster(addrs, 2*time.Second)
			if err != nil {
				fail(err)
				return
			}
			defer cc.Close()
			for i := 0; !stop.Load(); i++ {
				slot := fmt.Sprintf("ingest-%d-%d", id, i%32)
				if _, err := cc.Push(slot, "mg", pushSummary); err != nil {
					fail(err)
					return
				}
				ops.Add(1)
			}
		}(id)
	}
	wg.Wait()
	timer.Stop()
	if firstErr != nil {
		return nil, firstErr
	}
	rep.RoutedPushPerSec = float64(ops.Load()) / time.Since(start).Seconds()
	fmt.Printf("cluster/routed_push  clients=%d  %10.0f ops/s\n", clients, rep.RoutedPushPerSec)

	local, err := measureServer(addrs[0], clients, dur, func(c *server.Client, id int) error {
		_, _, err := c.PullFrame("starred")
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.PullLocalPerSec = local
	fmt.Printf("cluster/pull_local   clients=%d  %10.0f ops/s\n", clients, local)

	fanned, err := measureServer(addrs[0], clients, dur, func(c *server.Client, id int) error {
		_, _, err := c.PullClusterFrame("starred")
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.PullClusterPerSec = fanned
	if fanned > 0 {
		rep.FanInCost = local / fanned
	}
	fmt.Printf("cluster/pull_cluster clients=%d  %10.0f ops/s  fan-in cost %.2fx\n", clients, fanned, rep.FanInCost)
	return rep, nil
}

// mergeScalingSeries times mergetree.Parallel over a fixed 128-part
// Count-Min set (pure cell-wise CPU work) at each worker count,
// cloning the parts outside the timed region because Parallel
// consumes them.
func mergeScalingSeries(workersList []int, reps int) ([]mergeScalePoint, error) {
	const (
		parts   = 128
		perPart = 2048
	)
	stream := gen.NewZipf(1<<14, 1.1, 7).Stream(parts * perPart)
	base := make([]*countmin.Sketch, parts)
	for i := range base {
		s := countmin.New(2048, 6, 42)
		s.UpdateBatch(stream[i*perPart : (i+1)*perPart])
		base[i] = s
	}
	merge := mergetree.MergeFunc[*countmin.Sketch](func(d, s *countmin.Sketch) error { return d.Merge(s) })
	out := make([]mergeScalePoint, 0, len(workersList))
	var baseNs float64
	for _, workers := range workersList {
		var total int64
		for rep := 0; rep < reps; rep++ {
			clones := make([]*countmin.Sketch, parts)
			for i, s := range base {
				clones[i] = s.Clone()
			}
			t0 := time.Now()
			if _, err := mergetree.Parallel(clones, workers, merge); err != nil {
				return nil, err
			}
			total += time.Since(t0).Nanoseconds()
		}
		pt := mergeScalePoint{Workers: workers, NsPerReduce: float64(total) / float64(reps)}
		if baseNs == 0 {
			baseNs = pt.NsPerReduce
		}
		pt.Speedup = baseNs / pt.NsPerReduce
		out = append(out, pt)
		fmt.Printf("mergetree/parallel  workers=%-2d  %12.0f ns/reduce  speedup %.2fx\n",
			workers, pt.NsPerReduce, pt.Speedup)
	}
	return out, nil
}

func main() {
	out := flag.String("out", "results/bench.json", "output path for the JSON report")
	benchtime := flag.Duration("benchtime", time.Second, "target time per measurement")
	serverDur := flag.Duration("serverdur", 300*time.Millisecond, "wall time per server throughput point")
	familiesOnly := flag.Bool("families-only", false, "measure only the per-family ingest paths (skip server, per-kind and merge-scaling series); used by the bench-regress gate")
	flag.Parse()

	stream := gen.NewZipf(streamLen/16, 1.2, 1).Stream(streamLen)
	vals := gen.UniformValues(streamLen, 2)

	workloads := []workload{
		itemWorkload("misra_gries/k=64", stream,
			func() func(mergesum.Item) {
				s := mergesum.NewMisraGries(64)
				return func(x mergesum.Item) { s.Update(x, 1) }
			},
			func() func([]mergesum.Item) {
				s := mergesum.NewMisraGries(64)
				return s.UpdateBatch
			}),
		itemWorkload("misra_gries/k=1024", stream,
			func() func(mergesum.Item) {
				s := mergesum.NewMisraGries(1024)
				return func(x mergesum.Item) { s.Update(x, 1) }
			},
			func() func([]mergesum.Item) {
				s := mergesum.NewMisraGries(1024)
				return s.UpdateBatch
			}),
		itemWorkload("spacesaving/k=256", stream,
			func() func(mergesum.Item) {
				s := mergesum.NewSpaceSaving(256)
				return func(x mergesum.Item) { s.Update(x, 1) }
			},
			func() func([]mergesum.Item) {
				s := mergesum.NewSpaceSaving(256)
				return s.UpdateBatch
			}),
		itemWorkload("countmin/w=1024,d=4", stream,
			func() func(mergesum.Item) {
				s := mergesum.NewCountMin(1024, 4, 1)
				return func(x mergesum.Item) { s.Update(x, 1) }
			},
			func() func([]mergesum.Item) {
				s := mergesum.NewCountMin(1024, 4, 1)
				return s.UpdateBatch
			}),
		itemWorkload("countsketch/w=1024,d=4", stream,
			func() func(mergesum.Item) {
				s := mergesum.NewCountSketch(1024, 4, 1)
				return func(x mergesum.Item) { s.Update(x, 1) }
			},
			func() func([]mergesum.Item) {
				s := mergesum.NewCountSketch(1024, 4, 1)
				return s.UpdateBatch
			}),
		itemWorkload("kmv/k=1024", stream,
			func() func(mergesum.Item) {
				s := mergesum.NewKMV(1024, 1)
				return func(x mergesum.Item) { s.Update(x) }
			},
			func() func([]mergesum.Item) {
				s := mergesum.NewKMV(1024, 1)
				return s.UpdateBatch
			}),
		itemWorkload("hll/p=12", stream,
			func() func(mergesum.Item) {
				s := mergesum.NewHLL(12, 1)
				return func(x mergesum.Item) { s.Update(x) }
			},
			func() func([]mergesum.Item) {
				s := mergesum.NewHLL(12, 1)
				return s.UpdateBatch
			}),
		itemWorkload("topk/k=64", stream,
			func() func(mergesum.Item) {
				s := mergesum.NewTopK(64, 512, 4, 1)
				return func(x mergesum.Item) { s.Update(x, 1) }
			},
			func() func([]mergesum.Item) {
				s := mergesum.NewTopK(64, 512, 4, 1)
				return s.UpdateBatch
			}),
		valueWorkload("gk/eps=0.01", vals,
			func() func(float64) {
				s := mergesum.NewGK(0.01)
				return s.Update
			},
			func() func([]float64) {
				s := mergesum.NewGK(0.01)
				return s.UpdateBatch
			}),
		valueWorkload("randquant/eps=0.01", vals,
			func() func(float64) {
				s := mergesum.NewQuantile(0.01, 1)
				return s.Update
			},
			func() func([]float64) {
				s := mergesum.NewQuantile(0.01, 1)
				return s.UpdateBatch
			}),
		valueWorkload("hybrid/eps=0.01", vals,
			func() func(float64) {
				s := mergesum.NewQuantileHybrid(0.01, 1)
				return s.Update
			},
			func() func([]float64) {
				s := mergesum.NewQuantileHybrid(0.01, 1)
				return s.UpdateBatch
			}),
		valueWorkload("bottomk/k=4096", vals,
			func() func(float64) {
				s := mergesum.NewBottomK(4096, 1)
				return s.Update
			},
			func() func([]float64) {
				s := mergesum.NewBottomK(4096, 1)
				return s.UpdateBatch
			}),
		shardedMG(8, stream),
		shardedMG(16, stream),
		shardedHLL(8, stream),
	}

	rep := report{
		Schema:     5,
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BatchLen:   batchLen,
		StreamLen:  streamLen,
	}
	testing.Init()
	flag.Set("test.benchtime", benchtime.String())
	for _, w := range workloads {
		item := toPath(testing.Benchmark(w.perItem))
		batch := toPath(testing.Benchmark(w.batch))
		fr := familyResult{Family: w.family, PerItem: item, Batch: batch}
		if batch.NsPerOp > 0 {
			fr.Speedup = item.NsPerOp / batch.NsPerOp
		}
		rep.Families = append(rep.Families, fr)
		fmt.Printf("%-24s per-item %8.2f ns/op  batch %8.2f ns/op  speedup %.2fx\n",
			w.family, item.NsPerOp, batch.NsPerOp, fr.Speedup)
	}

	// The window series runs in every mode: its long-window speedup is
	// one of the regression-gated numbers.
	win, err := windowSeries(*benchtime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: window series:", err)
		os.Exit(1)
	}
	rep.Window = win

	if !*familiesOnly {
		srv, err := serverWorkloads([]int{1, 2, 4, 8, 16}, *serverDur)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: server series:", err)
			os.Exit(1)
		}
		rep.Server = srv
		fmt.Printf("pull cache speedup (16 clients): %.2fx\n", srv.PullCacheSpeedup)

		kinds, err := serverKindSeries(4, *serverDur)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: per-kind server series:", err)
			os.Exit(1)
		}
		rep.ServerKinds = kinds

		scaling, err := mergeScalingSeries([]int{1, 2, 4, 8, 16}, 5)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: merge scaling:", err)
			os.Exit(1)
		}
		rep.MergeScaling = scaling

		cl, err := clusterSeries(4, *serverDur)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: cluster series:", err)
			os.Exit(1)
		}
		rep.Cluster = cl
	}

	if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
