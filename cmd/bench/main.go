// Command bench measures the per-item and batched ingestion paths of
// every summary family and records the results as JSON, so the batch
// speedup trajectory can be tracked across commits.
//
// Usage:
//
//	go run ./cmd/bench -out results/bench.json [-benchtime 1s]
//
// ns/op is per ingested item on both paths (batch benchmarks advance
// b.N by the batch length per call), so speedup = per_item / batch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	mergesum "repro"
	"repro/internal/gen"
	"repro/internal/shard"
)

const (
	streamLen = 1 << 16
	batchLen  = 1024
)

type pathResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

type familyResult struct {
	Family  string     `json:"family"`
	PerItem pathResult `json:"per_item"`
	Batch   pathResult `json:"batch"`
	Speedup float64    `json:"speedup"`
}

type report struct {
	Schema     int            `json:"schema"`
	Go         string         `json:"go"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	BatchLen   int            `json:"batch_len"`
	StreamLen  int            `json:"stream_len"`
	Families   []familyResult `json:"families"`
}

func toPath(r testing.BenchmarkResult) pathResult {
	return pathResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

type workload struct {
	family  string
	perItem func(b *testing.B)
	batch   func(b *testing.B)
}

func itemWorkload(family string, stream []mergesum.Item,
	mk func() func(x mergesum.Item), mkBatch func() func(xs []mergesum.Item)) workload {
	return workload{
		family: family,
		perItem: func(b *testing.B) {
			up := mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				up(stream[i%len(stream)])
			}
		},
		batch: func(b *testing.B) {
			up := mkBatch()
			b.ResetTimer()
			for i := 0; i < b.N; i += batchLen {
				off := i % (len(stream) - batchLen)
				up(stream[off : off+batchLen])
			}
		},
	}
}

func valueWorkload(family string, vals []float64,
	mk func() func(v float64), mkBatch func() func(vs []float64)) workload {
	return workload{
		family: family,
		perItem: func(b *testing.B) {
			up := mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				up(vals[i%len(vals)])
			}
		},
		batch: func(b *testing.B) {
			up := mkBatch()
			b.ResetTimer()
			for i := 0; i < b.N; i += batchLen {
				off := i % (len(vals) - batchLen)
				up(vals[off : off+batchLen])
			}
		},
	}
}

// shardedWorkload ingests the stream from GOMAXPROCS goroutines into p
// lock-guarded shards of any summary type: per item (one lock
// acquisition each) vs batched (one acquisition per shard per batchLen
// items, with the shard's own UpdateBatch inside the lock).
func shardedWorkload[S any](family string, p int, stream []mergesum.Item,
	mk func(int) S, update func(S, mergesum.Item), updateBatch func(S, []mergesum.Item)) workload {
	return workload{
		family: fmt.Sprintf("%s/shards=%d", family, p),
		perItem: func(b *testing.B) {
			sh := shard.New(p, mk)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					x := stream[i%len(stream)]
					sh.Update(uint64(x), func(s S) { update(s, x) })
					i++
				}
			})
		},
		batch: func(b *testing.B) {
			sh := shard.New(p, mk)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				buf := make([]mergesum.Item, 0, batchLen)
				scratch := make([]mergesum.Item, 0, batchLen)
				i := 0
				flush := func() {
					if len(buf) == 0 {
						return
					}
					sh.UpdateBatch(len(buf),
						func(j int) uint64 { return uint64(buf[j]) },
						func(s S, idxs []int) {
							scratch = scratch[:0]
							for _, j := range idxs {
								scratch = append(scratch, buf[j])
							}
							updateBatch(s, scratch)
						})
					buf = buf[:0]
				}
				for pb.Next() {
					buf = append(buf, stream[i%len(stream)])
					i++
					if len(buf) == batchLen {
						flush()
					}
				}
				flush()
			})
		},
	}
}

func shardedMG(p int, stream []mergesum.Item) workload {
	return shardedWorkload("sharded_mg", p, stream,
		func(int) *mergesum.MisraGries { return mergesum.NewMisraGries(256) },
		func(s *mergesum.MisraGries, x mergesum.Item) { s.Update(x, 1) },
		func(s *mergesum.MisraGries, xs []mergesum.Item) { s.UpdateBatch(xs) })
}

func shardedHLL(p int, stream []mergesum.Item) workload {
	return shardedWorkload("sharded_hll", p, stream,
		func(int) *mergesum.HLL { return mergesum.NewHLL(12, 1) },
		func(s *mergesum.HLL, x mergesum.Item) { s.Update(x) },
		func(s *mergesum.HLL, xs []mergesum.Item) { s.UpdateBatch(xs) })
}

func main() {
	out := flag.String("out", "results/bench.json", "output path for the JSON report")
	benchtime := flag.Duration("benchtime", time.Second, "target time per measurement")
	flag.Parse()

	stream := gen.NewZipf(streamLen/16, 1.2, 1).Stream(streamLen)
	vals := gen.UniformValues(streamLen, 2)

	workloads := []workload{
		itemWorkload("misra_gries/k=64", stream,
			func() func(mergesum.Item) {
				s := mergesum.NewMisraGries(64)
				return func(x mergesum.Item) { s.Update(x, 1) }
			},
			func() func([]mergesum.Item) {
				s := mergesum.NewMisraGries(64)
				return s.UpdateBatch
			}),
		itemWorkload("misra_gries/k=1024", stream,
			func() func(mergesum.Item) {
				s := mergesum.NewMisraGries(1024)
				return func(x mergesum.Item) { s.Update(x, 1) }
			},
			func() func([]mergesum.Item) {
				s := mergesum.NewMisraGries(1024)
				return s.UpdateBatch
			}),
		itemWorkload("spacesaving/k=256", stream,
			func() func(mergesum.Item) {
				s := mergesum.NewSpaceSaving(256)
				return func(x mergesum.Item) { s.Update(x, 1) }
			},
			func() func([]mergesum.Item) {
				s := mergesum.NewSpaceSaving(256)
				return s.UpdateBatch
			}),
		itemWorkload("countmin/w=1024,d=4", stream,
			func() func(mergesum.Item) {
				s := mergesum.NewCountMin(1024, 4, 1)
				return func(x mergesum.Item) { s.Update(x, 1) }
			},
			func() func([]mergesum.Item) {
				s := mergesum.NewCountMin(1024, 4, 1)
				return s.UpdateBatch
			}),
		itemWorkload("countsketch/w=1024,d=4", stream,
			func() func(mergesum.Item) {
				s := mergesum.NewCountSketch(1024, 4, 1)
				return func(x mergesum.Item) { s.Update(x, 1) }
			},
			func() func([]mergesum.Item) {
				s := mergesum.NewCountSketch(1024, 4, 1)
				return s.UpdateBatch
			}),
		itemWorkload("kmv/k=1024", stream,
			func() func(mergesum.Item) {
				s := mergesum.NewKMV(1024, 1)
				return func(x mergesum.Item) { s.Update(x) }
			},
			func() func([]mergesum.Item) {
				s := mergesum.NewKMV(1024, 1)
				return s.UpdateBatch
			}),
		itemWorkload("hll/p=12", stream,
			func() func(mergesum.Item) {
				s := mergesum.NewHLL(12, 1)
				return func(x mergesum.Item) { s.Update(x) }
			},
			func() func([]mergesum.Item) {
				s := mergesum.NewHLL(12, 1)
				return s.UpdateBatch
			}),
		itemWorkload("topk/k=64", stream,
			func() func(mergesum.Item) {
				s := mergesum.NewTopK(64, 512, 4, 1)
				return func(x mergesum.Item) { s.Update(x, 1) }
			},
			func() func([]mergesum.Item) {
				s := mergesum.NewTopK(64, 512, 4, 1)
				return s.UpdateBatch
			}),
		valueWorkload("gk/eps=0.01", vals,
			func() func(float64) {
				s := mergesum.NewGK(0.01)
				return s.Update
			},
			func() func([]float64) {
				s := mergesum.NewGK(0.01)
				return s.UpdateBatch
			}),
		valueWorkload("randquant/eps=0.01", vals,
			func() func(float64) {
				s := mergesum.NewQuantile(0.01, 1)
				return s.Update
			},
			func() func([]float64) {
				s := mergesum.NewQuantile(0.01, 1)
				return s.UpdateBatch
			}),
		valueWorkload("hybrid/eps=0.01", vals,
			func() func(float64) {
				s := mergesum.NewQuantileHybrid(0.01, 1)
				return s.Update
			},
			func() func([]float64) {
				s := mergesum.NewQuantileHybrid(0.01, 1)
				return s.UpdateBatch
			}),
		valueWorkload("bottomk/k=4096", vals,
			func() func(float64) {
				s := mergesum.NewBottomK(4096, 1)
				return s.Update
			},
			func() func([]float64) {
				s := mergesum.NewBottomK(4096, 1)
				return s.UpdateBatch
			}),
		shardedMG(8, stream),
		shardedMG(16, stream),
		shardedHLL(8, stream),
	}

	rep := report{
		Schema:     1,
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BatchLen:   batchLen,
		StreamLen:  streamLen,
	}
	testing.Init()
	flag.Set("test.benchtime", benchtime.String())
	for _, w := range workloads {
		item := toPath(testing.Benchmark(w.perItem))
		batch := toPath(testing.Benchmark(w.batch))
		fr := familyResult{Family: w.family, PerItem: item, Batch: batch}
		if batch.NsPerOp > 0 {
			fr.Speedup = item.NsPerOp / batch.NsPerOp
		}
		rep.Families = append(rep.Families, fr)
		fmt.Printf("%-24s per-item %8.2f ns/op  batch %8.2f ns/op  speedup %.2fx\n",
			w.family, item.NsPerOp, batch.NsPerOp, fr.Speedup)
	}

	if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
