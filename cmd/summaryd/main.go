// Command summaryd runs the summary-aggregation daemon: workers PUSH
// framed summaries into named slots, the daemon merges them on
// arrival, and dashboards PULL the merged result — mergeable summaries
// as a service.
//
// Usage:
//
//	summaryd [-addr 127.0.0.1:7070] [-window] [-window-tick 1s]
//	         [-window-fan 8] [-window-levels 3]
//
// -window enables the multi-resolution roll-up plane: every slot's
// pushes additionally feed a ladder of sealed per-epoch segments
// (epochs tick every -window-tick; a level-ℓ segment covers
// fan^ℓ epochs) and the QWIN command answers time-travel queries over
// any epoch range from the minimal precomputed-segment cover.
//
// Protocol documentation lives in internal/server. A quick session
// with netcat:
//
//	$ printf 'STAT\n' | nc 127.0.0.1 7070
//	OK 0
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/window"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	kinds := flag.Bool("kinds", false, "print the served summary kinds and exit")
	front := flag.Int("front", 0, "ingest-front lanes for PUSHB (0 = off, -1 = GOMAXPROCS)")
	frontTick := flag.Duration("front-tick", 5*time.Millisecond, "ingest-front flush interval")
	win := flag.Bool("window", false, "enable windowed mode: per-slot roll-up planes and QWIN")
	winTick := flag.Duration("window-tick", time.Second, "windowed-mode epoch length")
	winFan := flag.Int("window-fan", 8, "roll-up fan-in (epochs per next-level segment)")
	winLevels := flag.Int("window-levels", 3, "roll-up ladder levels (1 = flat per-epoch ring)")
	flag.Parse()

	if *kinds {
		for _, ent := range registry.Entries() {
			fmt.Printf("%-12s tag %-2d merges %s\n", ent.Name(), ent.Kind(), strings.Join(ent.Variants(), ","))
		}
		return
	}

	s := server.New()
	if *front != 0 {
		s.SetIngestFront(*front, *frontTick)
	}
	if *win {
		s.SetWindow(window.Ladder{Fan: *winFan, Levels: *winLevels}, *winTick)
	}
	bound, err := s.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("summaryd listening on %s, serving %d kinds: %s\n",
		bound, len(registry.Names()), strings.Join(registry.Names(), " "))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		fmt.Println("shutting down")
		s.Close()
	}()

	if err := s.Serve(); err != nil {
		log.Fatal(err)
	}
}
