// Command summaryd runs the summary-aggregation daemon: workers PUSH
// framed summaries into named slots, the daemon merges them on
// arrival, and dashboards PULL the merged result — mergeable summaries
// as a service.
//
// Usage:
//
//	summaryd [-addr 127.0.0.1:7070] [-window] [-window-tick 1s]
//	         [-window-fan 8] [-window-levels 3]
//	         [-peers host1:7070,host2:7070,...] [-node-id host1:7070]
//	         [-peer-timeout 2s] [-peer-retries 1]
//
// -window enables the multi-resolution roll-up plane: every slot's
// pushes additionally feed a ladder of sealed per-epoch segments
// (epochs tick every -window-tick; a level-ℓ segment covers
// fan^ℓ epochs) and the QWIN command answers time-travel queries over
// any epoch range from the minimal precomputed-segment cover.
//
// -peers enables coordinator-less cluster mode: the flag lists every
// node's address (the same list on every node), -node-id names this
// node's own entry, and the PULLC/QWINC commands answer cluster-wide
// queries by fanning out to all peers and merging their snapshots —
// ask any node, get the whole cluster's answer. There is no leader:
// mergeable summaries make the fan-in correct from anywhere.
//
// On SIGTERM or SIGINT the daemon shuts down gracefully: it stops
// accepting connections, drains the ingest-front lanes (and seals the
// live window epoch), gives in-flight connections a grace period, and
// exits 0 — a final PULL served during the grace period sees every
// push that was acknowledged.
//
// Protocol documentation lives in internal/server. A quick session
// with netcat:
//
//	$ printf 'STAT\n' | nc 127.0.0.1 7070
//	OK 0
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/window"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	kinds := flag.Bool("kinds", false, "print the served summary kinds and exit")
	front := flag.Int("front", 0, "ingest-front lanes for PUSHB (0 = off, -1 = GOMAXPROCS)")
	frontTick := flag.Duration("front-tick", 5*time.Millisecond, "ingest-front flush interval")
	win := flag.Bool("window", false, "enable windowed mode: per-slot roll-up planes and QWIN")
	winTick := flag.Duration("window-tick", time.Second, "windowed-mode epoch length")
	winFan := flag.Int("window-fan", 8, "roll-up fan-in (epochs per next-level segment)")
	winLevels := flag.Int("window-levels", 3, "roll-up ladder levels (1 = flat per-epoch ring)")
	peers := flag.String("peers", "", "comma-separated cluster member addresses (enables PULLC/QWINC fan-in)")
	nodeID := flag.String("node-id", "", "this node's own entry in -peers (defaults to -addr)")
	peerTimeout := flag.Duration("peer-timeout", server.DefaultPeerTimeout, "per-peer read timeout during cluster fan-in")
	peerRetries := flag.Int("peer-retries", 1, "per-peer re-dials after a failed fan-in read")
	grace := flag.Duration("grace", 5*time.Second, "in-flight connection grace period on shutdown")
	flag.Parse()

	if *kinds {
		for _, ent := range registry.Entries() {
			fmt.Printf("%-12s tag %-2d merges %s\n", ent.Name(), ent.Kind(), strings.Join(ent.Variants(), ","))
		}
		return
	}

	s := server.New()
	if *front != 0 {
		s.SetIngestFront(*front, *frontTick)
	}
	if *win {
		s.SetWindow(window.Ladder{Fan: *winFan, Levels: *winLevels}, *winTick)
	}
	if *peers != "" {
		self := *nodeID
		if self == "" {
			self = *addr
		}
		list := strings.Split(*peers, ",")
		for i := range list {
			list[i] = strings.TrimSpace(list[i])
		}
		s.SetPeers(self, list, *peerTimeout, *peerRetries)
	}
	bound, err := s.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("summaryd listening on %s, serving %d kinds: %s\n",
		bound, len(registry.Names()), strings.Join(registry.Names(), " "))
	if peerList := s.Peers(); len(peerList) > 0 {
		fmt.Printf("summaryd cluster mode: %d peers (%s)\n", len(peerList), strings.Join(peerList, " "))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("shutting down: draining ingest lanes and sealing live epoch")
		s.Shutdown(*grace)
	}()

	if err := s.Serve(); err != nil {
		log.Fatal(err)
	}
}
