package main

import (
	"bytes"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/registry"
	_ "repro/internal/registry/all"
	"repro/internal/server"
)

// rawSummary adapts pre-encoded frame bytes to the client marshaler
// interface, as the in-process catalog sweep does.
type rawSummary []byte

func (r rawSummary) MarshalBinary() ([]byte, error) { return r, nil }

// buildSummaryd compiles the daemon once into a temp dir.
func buildSummaryd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "summaryd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building summaryd: %v\n%s", err, out)
	}
	return bin
}

// reservePorts picks n distinct loopback addresses by binding and
// releasing ephemeral ports. A tiny window exists where another
// process could claim one, which is acceptable in a test.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// startDaemon launches one summaryd process in cluster mode and
// registers a kill-on-cleanup.
func startDaemon(t *testing.T, bin, addr string, peers []string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-node-id", addr,
		"-peers", strings.Join(peers, ","),
		"-peer-timeout", "500ms",
		"-peer-retries", "0",
		"-grace", "2s",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd
}

// waitReady dials until the daemon answers or the deadline passes.
func waitReady(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := server.Dial(addr)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("summaryd at %s never came up", addr)
}

// TestClusterProcesses is the multi-process acceptance test: three
// summaryd processes on loopback form a coordinator-less cluster, a
// sharded stream of every registered family is pushed across them,
// and a cluster-wide PULLC — asked of every node — answers
// byte-identically everywhere and with exactly the single-node fold's
// total weight. Then one peer is killed and the fan-in must come back
// quickly with a partial-result error naming it, and a survivor must
// shut down cleanly on SIGTERM.
func TestClusterProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	bin := buildSummaryd(t)
	addrs := reservePorts(t, 3)
	procs := make([]*exec.Cmd, len(addrs))
	for i, a := range addrs {
		procs[i] = startDaemon(t, bin, a, addrs)
	}
	for _, a := range addrs {
		waitReady(t, a)
	}

	conns := make([]*server.Client, len(addrs))
	for i, a := range addrs {
		c, err := server.Dial(a)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
	}

	// Shard six frames of every family across the three processes and
	// record the expected total weight.
	wantN := map[string]uint64{}
	for _, ent := range registry.Entries() {
		slot := "mp-" + ent.Name()
		for i, n := range []int{80, 21, 300, 5, 144, 62} {
			ex := ent.Example(n)
			wantN[ent.Name()] += ent.N(ex)
			f, err := ent.Encode(ex)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := conns[i%3].Push(slot, ent.Name(), rawSummary(f)); err != nil {
				t.Fatalf("%s shard push: %v", ent.Name(), err)
			}
		}
	}

	// Every node must serve the identical cluster-wide answer for
	// every family.
	for _, ent := range registry.Entries() {
		slot := "mp-" + ent.Name()
		var first []byte
		for i, c := range conns {
			kind, frame, err := c.PullClusterFrame(slot)
			if err != nil {
				t.Fatalf("%s PULLC via node %d: %v", ent.Name(), i, err)
			}
			if kind != ent.Name() {
				t.Fatalf("%s PULLC kind = %q", ent.Name(), kind)
			}
			if i == 0 {
				first = frame
				dec, err := ent.Decode(frame)
				if err != nil {
					t.Fatal(err)
				}
				if gn := ent.N(dec); gn != wantN[ent.Name()] {
					t.Fatalf("%s cluster N = %d, want %d", ent.Name(), gn, wantN[ent.Name()])
				}
			} else if !bytes.Equal(frame, first) {
				t.Fatalf("%s: node %d's cluster answer differs from node 0's", ent.Name(), i)
			}
		}
	}

	// Kill node 2: fan-in through a survivor must fail fast with a
	// partial-result error naming the dead peer, and node-local reads
	// must keep working.
	procs[2].Process.Kill()
	procs[2].Wait()
	ent := registry.Entries()[0]
	start := time.Now()
	_, _, err := conns[0].PullClusterFrame("mp-" + ent.Name())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("fan-in over a killed peer succeeded")
	}
	if !strings.Contains(err.Error(), "partial result") || !strings.Contains(err.Error(), addrs[2]) {
		t.Fatalf("partial-result error does not name the dead peer: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("fan-in over a killed peer took %v", elapsed)
	}
	if _, _, err := conns[0].PullFrame("mp-" + ent.Name()); err != nil {
		t.Fatalf("node-local PULL after peer death: %v", err)
	}

	// SIGTERM a survivor: graceful exit, status 0.
	if err := procs[1].Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitDone := make(chan error, 1)
	go func() { waitDone <- procs[1].Wait() }()
	select {
	case err := <-waitDone:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("summaryd did not exit on SIGTERM")
	}

	// The remaining node still answers (as a degraded cluster member,
	// its own state is intact).
	if _, _, err := conns[0].PullFrame("mp-" + ent.Name()); err != nil {
		t.Fatalf("last survivor's local PULL: %v", err)
	}
}
