// Command experiments regenerates every reproduction experiment table
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-n N] [-seed S] [-quick] [-run E01,E04] [-format text|markdown]
//
// Each experiment prints its claim notes followed by its tables; the
// output is deterministic for a fixed (n, seed).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	n := fs.Int("n", 200000, "base stream length")
	seed := fs.Uint64("seed", 42, "random seed for the whole run")
	quick := fs.Bool("quick", false, "trim sweeps for a fast smoke run")
	runIDs := fs.String("run", "", "comma-separated experiment IDs (default: all)")
	list := fs.Bool("list", false, "list experiments and exit")
	format := fs.String("format", "text", "table format: text or markdown")
	csvDir := fs.String("csv", "", "also write each table as CSV into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "markdown" {
		return fmt.Errorf("unknown format %q (want text or markdown)", *format)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%s  %s\n", e.ID, e.Title)
		}
		return nil
	}

	var selected []experiments.Experiment
	if *runIDs == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q; known: %v", id, experiments.IDs())
			}
			selected = append(selected, e)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	cfg := experiments.Config{N: *n, Seed: *seed, Quick: *quick}
	for _, e := range selected {
		fmt.Fprintf(out, "=== %s: %s\n", e.ID, e.Title)
		start := time.Now()
		res := e.Run(cfg)
		for _, note := range res.Notes {
			fmt.Fprintf(out, "    %s\n", note)
		}
		fmt.Fprintln(out)
		for ti, tb := range res.Tables {
			if *csvDir != "" {
				name := fmt.Sprintf("%s_%d.csv", e.ID, ti)
				f, err := os.Create(filepath.Join(*csvDir, name))
				if err != nil {
					return err
				}
				if err := tb.RenderCSV(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
			var err error
			if *format == "markdown" {
				err = tb.RenderMarkdown(out)
			} else {
				err = tb.Render(out)
			}
			if err != nil {
				return fmt.Errorf("render: %w", err)
			}
			fmt.Fprintln(out)
		}
		fmt.Fprintf(out, "    (%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
