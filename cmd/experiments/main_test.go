package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, id := range []string{"E01", "E04", "E19"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingleExperimentText(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-n", "20000", "-run", "E04"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E04a: worked examples") {
		t.Errorf("missing golden table:\n%s", out)
	}
	if !strings.Contains(out, "80") || !strings.Contains(out, "55") {
		t.Error("golden numbers missing from output")
	}
}

func TestRunMarkdown(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-n", "20000", "-run", "E04", "-format", "markdown"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "| --- |") {
		t.Error("markdown separator missing")
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-run", "E99"}, &b); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-format", "html"}, &b); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run([]string{"-notaflag"}, &b); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunMultipleIDs(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-n", "20000", "-run", "E03, E12"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "=== E03") || !strings.Contains(out, "=== E12") {
		t.Error("selected experiments missing")
	}
	if strings.Contains(out, "=== E01") {
		t.Error("unselected experiment ran")
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-quick", "-n", "20000", "-run", "E04", "-csv", dir}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "E04_0.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "summary,algorithm,E_T,paper says\n") {
		t.Errorf("unexpected CSV header:\n%s", data)
	}
	if !strings.Contains(string(data), "frequent,pods12-prune,80,80") {
		t.Errorf("golden row missing:\n%s", data)
	}
	if _, err := os.Stat(filepath.Join(dir, "E04_1.csv")); err != nil {
		t.Error("second table CSV missing")
	}
}
